package store

import (
	"encoding/binary"
	"errors"
)

// opKind tags the MRP-Store operations of Table 1, plus the client-side
// batch of small writes (Section 7.2: "clients may batch small commands,
// grouped by partition, up to 32 Kbytes") and the online-repartitioning
// commands of the elastic-rebalancing protocol (internal/rebalance).
type opKind byte

const (
	opRead opKind = iota + 1
	opScan
	opUpdate
	opInsert
	opDelete
	opBatch
	// opPrepareReconfig freezes the donor side of a reconfiguration (and,
	// for a merge, arms the destination); ordered through a ring every
	// affected replica subscribes to, so the freeze lands at the same
	// logical point everywhere. The reconfig kind below selects the exact
	// semantics.
	opPrepareReconfig
	// opMigrate installs a chunk of frozen entries on the destination
	// partition's ring — while the partition is warming (split) or
	// receiving (merge).
	opMigrate
	// opActivatePart ends a new partition's warming phase once the full
	// range has been migrated; client commands are served afterwards.
	opActivatePart
	// opCommitReconfig flips ownership atomically: a split's source drops
	// the moved range, a merge's survivor adopts the merged mapping, and
	// the replicas on the ring adopt the new schema epoch.
	opCommitReconfig
	// opAbortReconfig is the ordered inverse of opPrepareReconfig: it
	// unfreezes a prepared range, restores the pre-prepare mapping, and
	// drops half-transferred entries, so a reconfiguration that dies
	// between prepare and commit can be rolled back without losing the
	// range forever.
	opAbortReconfig
	// opStats reads one partition's load/size accounting (key count, byte
	// size, cumulative data ops executed) — the signal surface the
	// auto-sharding controller samples. It is a read: it mutates nothing
	// and does not itself count as load.
	opStats
	// opTxn carries a cross-partition transaction (internal/txn): one
	// command multicast once to the minimal ring set covering its
	// participant partitions; each participant's SM executes its half at
	// the same merged position, non-participants sharing a ring reply
	// "not involved". The transaction payload rides in the value field
	// with its own canonical codec.
	opTxn
)

// Reconfiguration kinds carried by prepare/abort/commit commands.
const (
	// reconfigSplit: carve [key, hi) out of partition `part` for the new
	// partition `newPart`; every replica on the ordering ring adopts the
	// post-split mapping at prepare.
	reconfigSplit byte = iota + 1
	// reconfigMergeDonor: freeze partition `part` entirely — its whole
	// range is moving to `newPart` — and return its entries. The mapping
	// does not change until the survivor's commit.
	reconfigMergeDonor
	// reconfigMergeDest: arm partition `newPart` to accept epoch-tagged
	// migrate chunks for the range it will own after the commit.
	reconfigMergeDest
)

// errBadOp reports a malformed operation or result encoding.
var errBadOp = errors.New("store: bad encoding")

// op is one decoded store operation. Every op carries the schema epoch the
// client routed under; replicas answer ops routed under a superseded
// mapping with statusWrongEpoch (the typed redirect of the rebalancing
// protocol).
type op struct {
	kind    opKind
	epoch   uint64
	key     string // split key for opPrepareReconfig(split)
	value   []byte
	to      string // scan upper bound
	limit   int    // scan limit
	batch   []op   // for opBatch/opMigrate (write ops only)
	part    uint16 // donor partition (reconfig) / target partition (activate, migrate)
	newPart uint16 // partition receiving the moved range (reconfig)
	rkind   byte   // reconfiguration kind (reconfigSplit, ...)
	// pmap is the authoritative post-reconfiguration mapping carried by a
	// split's prepare and a merge's commit. Replicas install it instead of
	// deriving the next mapping from their own — a replica whose rings saw
	// none of the intervening reconfigurations (they ride other rings) has
	// a stale view that a local Split/Merge would reject or corrupt.
	pmap Partitioner
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(v)))
	return append(b, v...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errBadOp
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, errBadOp
	}
	// The decoded key outlives the op — it is stored in the map or
	// becomes part of the reply — so the copy is mandatory.
	return string(b[2 : 2+n]), b[2+n:], nil //mrp:alloc — decoded strings escape into the map and the reply; the copy is the ownership transfer
}

func takeBytes(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, errBadOp
	}
	n := int(binary.BigEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, errBadOp
	}
	return b[4 : 4+n], b[4+n:], nil
}

func (o op) encode() []byte {
	b := []byte{byte(o.kind)}
	b = binary.BigEndian.AppendUint64(b, o.epoch)
	switch o.kind {
	case opRead, opDelete:
		b = appendString(b, o.key)
	case opUpdate, opInsert:
		b = appendString(b, o.key)
		b = appendBytes(b, o.value)
	case opScan:
		b = appendString(b, o.key)
		b = appendString(b, o.to)
		b = binary.BigEndian.AppendUint32(b, uint32(o.limit))
	case opBatch:
		b = binary.BigEndian.AppendUint32(b, uint32(len(o.batch)))
		for _, sub := range o.batch {
			enc := sub.encode()
			b = appendBytes(b, enc)
		}
	case opMigrate:
		b = binary.BigEndian.AppendUint16(b, o.part)
		b = binary.BigEndian.AppendUint32(b, uint32(len(o.batch)))
		for _, sub := range o.batch {
			enc := sub.encode()
			b = appendBytes(b, enc)
		}
	case opPrepareReconfig, opAbortReconfig, opCommitReconfig:
		b = append(b, o.rkind)
		b = binary.BigEndian.AppendUint16(b, o.part)
		b = binary.BigEndian.AppendUint16(b, o.newPart)
		b = appendString(b, o.key)
		if o.pmap != nil {
			b = append(b, 1)
			b = appendPartitioner(b, o.pmap)
		} else {
			b = append(b, 0)
		}
	case opActivatePart, opStats:
		b = binary.BigEndian.AppendUint16(b, o.part)
	case opTxn:
		b = appendBytes(b, o.value)
	}
	return b
}

func decodeOp(b []byte) (op, error) {
	if len(b) < 9 {
		return op{}, errBadOp
	}
	o := op{kind: opKind(b[0]), epoch: binary.BigEndian.Uint64(b[1:])}
	b = b[9:]
	var err error
	switch o.kind {
	case opRead, opDelete:
		o.key, _, err = takeString(b)
	case opUpdate, opInsert:
		o.key, b, err = takeString(b)
		if err == nil {
			o.value, _, err = takeBytes(b)
		}
	case opScan:
		o.key, b, err = takeString(b)
		if err == nil {
			o.to, b, err = takeString(b)
		}
		if err == nil {
			if len(b) < 4 {
				return op{}, errBadOp
			}
			o.limit = int(binary.BigEndian.Uint32(b))
		}
	case opBatch, opMigrate:
		if o.kind == opMigrate {
			if len(b) < 2 {
				return op{}, errBadOp
			}
			o.part = binary.BigEndian.Uint16(b)
			b = b[2:]
		}
		if len(b) < 4 {
			return op{}, errBadOp
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n > len(b) {
			return op{}, errBadOp
		}
		o.batch = make([]op, 0, n) //mrp:alloc — a batch op owns its sub-ops for its lifetime; sized exactly, once per batch command
		for i := 0; i < n; i++ {
			var raw []byte
			raw, b, err = takeBytes(b)
			if err != nil {
				return op{}, err
			}
			sub, subErr := decodeOp(raw)
			if subErr != nil {
				return op{}, subErr
			}
			o.batch = append(o.batch, sub)
		}
	case opPrepareReconfig, opAbortReconfig, opCommitReconfig:
		if len(b) < 5 {
			return op{}, errBadOp
		}
		o.rkind = b[0]
		o.part = binary.BigEndian.Uint16(b[1:])
		o.newPart = binary.BigEndian.Uint16(b[3:])
		o.key, b, err = takeString(b[5:])
		if err == nil {
			if len(b) < 1 {
				return op{}, errBadOp
			}
			hasMap := b[0] != 0
			b = b[1:]
			if hasMap {
				var ok bool
				o.pmap, _, ok = takePartitioner(b)
				if !ok {
					return op{}, errBadOp
				}
			}
		}
	case opActivatePart, opStats:
		if len(b) < 2 {
			return op{}, errBadOp
		}
		o.part = binary.BigEndian.Uint16(b)
	case opTxn:
		o.value, _, err = takeBytes(b)
	default:
		return op{}, errBadOp
	}
	if err != nil {
		return op{}, err
	}
	return o, nil
}

// Result status codes.
const (
	statusOK byte = iota + 1
	statusNotFound
	statusError
	// statusWrongEpoch is the typed redirect of the rebalancing protocol:
	// the replica does not (or no longer) own the addressed key under the
	// schema the command was routed with. The result's epoch field reports
	// the replica's current epoch; clients refresh their schema and retry.
	statusWrongEpoch
)

// result is a replica's reply to one operation, tagged with the partition
// that produced it so multi-partition clients can gather one reply per
// partition, and with the replica's schema epoch so stale clients know to
// refresh.
type result struct {
	status    byte
	partition uint16
	epoch     uint64
	value     []byte  // read result
	entries   []Entry // scan/prepare-split result
	count     uint32  // batch result
}

func (r result) encode() []byte {
	n := 1 + 2 + 8 + 4 + len(r.value) + 4 + 4
	for _, e := range r.entries {
		n += 2 + len(e.Key) + 4 + len(e.Value)
	}
	b := make([]byte, 0, n) //mrp:alloc — the encoded reply escapes into the dedup cache and the transport; sized exactly, one allocation per result instead of append growth
	b = append(b, r.status)
	b = binary.BigEndian.AppendUint16(b, r.partition)
	b = binary.BigEndian.AppendUint64(b, r.epoch)
	b = appendBytes(b, r.value)
	b = binary.BigEndian.AppendUint32(b, uint32(len(r.entries)))
	for _, e := range r.entries {
		b = appendString(b, e.Key)
		b = appendBytes(b, e.Value)
	}
	b = binary.BigEndian.AppendUint32(b, r.count)
	return b
}

func decodeResult(b []byte) (result, error) {
	if len(b) < 11 {
		return result{}, errBadOp
	}
	r := result{
		status:    b[0],
		partition: binary.BigEndian.Uint16(b[1:]),
		epoch:     binary.BigEndian.Uint64(b[3:]),
	}
	b = b[11:]
	var err error
	r.value, b, err = takeBytes(b)
	if err != nil {
		return result{}, err
	}
	if len(b) < 4 {
		return result{}, errBadOp
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b) {
		return result{}, errBadOp
	}
	r.entries = make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		var k string
		var v []byte
		k, b, err = takeString(b)
		if err != nil {
			return result{}, err
		}
		v, b, err = takeBytes(b)
		if err != nil {
			return result{}, err
		}
		r.entries = append(r.entries, Entry{Key: k, Value: v})
	}
	if len(b) < 4 {
		return result{}, errBadOp
	}
	r.count = binary.BigEndian.Uint32(b)
	return r, nil
}
