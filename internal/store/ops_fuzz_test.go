package store

import (
	"bytes"
	"testing"

	"mrp/internal/txn"
)

// fuzzOpSeeds covers every op kind, including the cross-partition
// transaction envelope.
func fuzzOpSeeds() [][]byte {
	sub := op{kind: opInsert, epoch: 1, key: "k", value: []byte("v")}
	sampleTxn := txn.Txn{Client: 3, Seq: 7, Kind: txn.KindTransfer, Parts: []uint16{0, 1},
		Ops: []txn.KeyOp{{Part: 0, Key: "a", Delta: -5}, {Part: 1, Key: "b", Delta: 5}}}
	ops := []op{
		{kind: opRead, epoch: 2, key: "r"},
		{kind: opScan, epoch: 2, key: "a", to: "z", limit: 10},
		{kind: opUpdate, epoch: 2, key: "u", value: []byte("x")},
		{kind: opDelete, epoch: 2, key: "d"},
		{kind: opBatch, epoch: 2, batch: []op{sub}},
		{kind: opMigrate, epoch: 2, part: 1, batch: []op{sub}},
		{kind: opPrepareReconfig, epoch: 2, rkind: reconfigSplit, part: 0, newPart: 3, key: "m"},
		{kind: opActivatePart, epoch: 2, part: 3},
		{kind: opCommitReconfig, epoch: 2, rkind: reconfigSplit, part: 0, newPart: 3},
		{kind: opAbortReconfig, epoch: 2, rkind: reconfigMergeDonor, part: 1, newPart: 0},
		{kind: opStats, epoch: 2, part: 0},
		{kind: opTxn, epoch: 2, value: sampleTxn.Encode()},
	}
	seeds := make([][]byte, 0, len(ops))
	for _, o := range ops {
		seeds = append(seeds, o.encode())
	}
	return seeds
}

// FuzzOpDecode checks the encode fixpoint of the op codec: the legacy
// format tolerates trailing bytes on input, so full canonicality is out
// of reach, but whatever decodeOp accepts must re-encode to a stable
// form — decode(encode(decode(x))) reproduces encode(decode(x)) exactly.
// For opTxn envelopes the embedded transaction payload IS canonical:
// if it parses, it must re-encode byte-identically, or ambiguous-timeout
// retries would not be recognized as duplicates by the dedup bitmap.
func FuzzOpDecode(f *testing.F) {
	for _, s := range fuzzOpSeeds() {
		f.Add(s)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(opTxn), 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := decodeOp(data)
		if err != nil {
			return
		}
		e1 := o.encode()
		o2, err := decodeOp(e1)
		if err != nil {
			t.Fatalf("re-encoded op rejected: %v\n in: %x\nout: %x", err, data, e1)
		}
		if e2 := o2.encode(); !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixpoint:\n e1: %x\n e2: %x", e1, e2)
		}
		if o.kind == opTxn {
			tx, err := txn.Decode(o.value)
			if err != nil {
				return
			}
			if re := tx.Encode(); !bytes.Equal(re, o.value) {
				t.Fatalf("embedded txn payload not canonical:\n in: %x\nout: %x", o.value, re)
			}
		}
	})
}
