package store

import (
	"fmt"
	"sort"
)

// Partitioner maps keys to partitions. Applications decide whether data is
// hash- or range-partitioned, and clients must know the scheme (Section
// 6.1; the paper stores it in Zookeeper, here it is part of the deployment
// configuration published through the registry).
type Partitioner interface {
	// N returns the number of partitions.
	N() int
	// PartitionOf returns the partition owning a key.
	PartitionOf(key string) int
	// PartitionsForRange returns the partitions that may hold keys in
	// [from, to] (to == "" means unbounded).
	PartitionsForRange(from, to string) []int
}

// HashPartitioner assigns keys by FNV hash modulo the partition count.
// Range scans must visit every partition.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner creates a hash partitioner over n partitions.
func NewHashPartitioner(n int) *HashPartitioner {
	if n <= 0 {
		n = 1
	}
	return &HashPartitioner{n: n}
}

// N implements Partitioner.
func (p *HashPartitioner) N() int { return p.n }

// fnv1a32 constants (hash/fnv's 32-bit offset basis and prime). The hash
// is inlined over the string so the per-key ownership check — run for
// every data command and every scanned entry — neither copies the key to
// a byte slice nor allocates a hasher. The values are bit-identical to
// hash/fnv's New32a, so partition assignments (and therefore every
// existing deployment's data placement) are unchanged.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// PartitionOf implements Partitioner.
func (p *HashPartitioner) PartitionOf(key string) int {
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return int(h % uint32(p.n))
}

// PartitionsForRange implements Partitioner: hash partitioning scatters
// ranges everywhere, so scans go to all partitions.
func (p *HashPartitioner) PartitionsForRange(_, _ string) []int {
	out := make([]int, p.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RangePartitioner assigns keys by sorted boundary keys: key slot i covers
// [bounds[i-1], bounds[i]), with the first slot unbounded below and the
// last unbounded above. Each slot maps to a partition index through an
// assignment table, so an online split can carve a new slot out of an
// existing partition and hand it to a freshly added partition index, and
// an online merge can hand a partition's slots to a neighbor and drop the
// partition index — in both cases without renumbering any other partition
// (renumbering would silently remap every deployed replica group).
//
// The partition index space may therefore be sparse: merging away a
// partition whose index is not the highest leaves that index permanently
// retired (no slot assigns to it), while merging away the highest index
// shrinks the space so the index can be recycled by a later split.
type RangePartitioner struct {
	bounds []string // len = slots-1, sorted
	assign []int    // len = slots; assign[slot] = partition index owning it
}

// NewRangePartitioner creates a range partitioner with the given upper
// boundaries (exclusive) for all but the last partition. The boundaries
// are sorted; n = len(bounds)+1, and slot i is partition i.
func NewRangePartitioner(bounds []string) *RangePartitioner {
	b := append([]string(nil), bounds...)
	sort.Strings(b)
	assign := make([]int, len(b)+1)
	for i := range assign {
		assign[i] = i
	}
	return &RangePartitioner{bounds: b, assign: assign}
}

// newRangePartitionerAssigned rebuilds a partitioner from published schema
// state (bounds must already be sorted). The assignment need not be a
// permutation: after a merge a partition owns several slots, and retired
// indexes of merged-away partitions may be absent entirely. It must only
// be well-formed — non-negative indexes, one per slot.
func newRangePartitionerAssigned(bounds []string, assign []int) (*RangePartitioner, error) {
	if len(assign) != len(bounds)+1 {
		return nil, fmt.Errorf("store: %d assignments for %d slots", len(assign), len(bounds)+1)
	}
	for _, a := range assign {
		if a < 0 || a > 0xFFFF {
			return nil, fmt.Errorf("store: assignment %v out of range", assign)
		}
	}
	return &RangePartitioner{
		bounds: append([]string(nil), bounds...),
		assign: append([]int(nil), assign...),
	}, nil
}

// NewRangePartitionerAssigned rebuilds a partitioner from recorded bounds
// and slot assignments (the shape LoadSchema and reconfiguration intent
// records carry).
func NewRangePartitionerAssigned(bounds []string, assign []int) (*RangePartitioner, error) {
	return newRangePartitionerAssigned(bounds, assign)
}

// Bounds returns the boundary keys (copy).
func (p *RangePartitioner) Bounds() []string { return append([]string(nil), p.bounds...) }

// Assignments returns the slot-to-partition table (copy).
func (p *RangePartitioner) Assignments() []int { return append([]int(nil), p.assign...) }

// N implements Partitioner: the size of the partition index space,
// 1 + the highest assigned index. Retired indexes of merged-away
// partitions below the maximum still count — indexes are never renumbered,
// so arrays indexed by partition must span them.
func (p *RangePartitioner) N() int {
	max := 0
	for _, a := range p.assign {
		if a > max {
			max = a
		}
	}
	return max + 1
}

func (p *RangePartitioner) slotOf(key string) int {
	// First boundary strictly greater than key identifies the slot.
	return sort.SearchStrings(p.bounds, key+"\x00")
}

// PartitionOf implements Partitioner.
func (p *RangePartitioner) PartitionOf(key string) int {
	return p.assign[p.slotOf(key)]
}

// PartitionsForRange implements Partitioner: only partitions overlapping
// [from, to] are involved (this is what makes range-partitioned scans
// cheaper, Section 6.1). A partition owning several slots after a merge
// appears once.
func (p *RangePartitioner) PartitionsForRange(from, to string) []int {
	lo := p.slotOf(from)
	hi := len(p.assign) - 1
	if to != "" {
		hi = p.slotOf(to)
	}
	out := make([]int, 0, hi-lo+1)
	seen := make(map[int]bool, hi-lo+1)
	for i := lo; i <= hi; i++ {
		if !seen[p.assign[i]] {
			seen[p.assign[i]] = true
			out = append(out, p.assign[i])
		}
	}
	return out
}

// Split returns a new partitioner in which the key range [splitKey, hi) of
// splitKey's current slot is carved into its own slot owned by partition
// newPart (the next free partition index). All other slots keep their
// partition assignment, so only ownership of the moved range changes —
// the invariant the online repartitioning protocol relies on. splitKey
// must fall strictly inside its slot.
func (p *RangePartitioner) Split(splitKey string, newPart int) (*RangePartitioner, error) {
	if newPart != p.N() {
		return nil, fmt.Errorf("store: split must assign the next partition index %d, got %d", p.N(), newPart)
	}
	s := p.slotOf(splitKey)
	if s > 0 && p.bounds[s-1] == splitKey {
		return nil, fmt.Errorf("store: split key %q is already a boundary", splitKey)
	}
	bounds := make([]string, 0, len(p.bounds)+1)
	bounds = append(bounds, p.bounds[:s]...)
	bounds = append(bounds, splitKey)
	bounds = append(bounds, p.bounds[s:]...)
	assign := make([]int, 0, len(p.assign)+1)
	assign = append(assign, p.assign[:s+1]...) // slot s keeps [lo, splitKey)
	assign = append(assign, newPart)           // new slot [splitKey, hi)
	assign = append(assign, p.assign[s+1:]...)
	return &RangePartitioner{bounds: bounds, assign: assign}, nil
}

// Merge returns a new partitioner in which every slot of partition donor is
// handed to partition survivor, dropping the donor's index from the
// assignment without renumbering any other partition — the inverse of
// Split, and the key-mapping half of an online partition merge. The donor
// must own a slot adjacent to one of the survivor's (merging adjacent
// ranges is what keeps range scans contiguous). Adjacent slots with the
// same owner are coalesced, removing the boundary between them, so a later
// split at the same key works again; when the donor held the highest index
// the index space shrinks and the index can be recycled.
func (p *RangePartitioner) Merge(donor, survivor int) (*RangePartitioner, error) {
	if donor == survivor {
		return nil, fmt.Errorf("store: merge of partition %d into itself", donor)
	}
	donorSlots, survivorSlots, adjacent := 0, 0, false
	for i, a := range p.assign {
		switch a {
		case donor:
			donorSlots++
			if (i > 0 && p.assign[i-1] == survivor) || (i+1 < len(p.assign) && p.assign[i+1] == survivor) {
				adjacent = true
			}
		case survivor:
			survivorSlots++
		}
	}
	if donorSlots == 0 {
		return nil, fmt.Errorf("store: merge donor %d owns no range", donor)
	}
	if survivorSlots == 0 {
		return nil, fmt.Errorf("store: merge survivor %d owns no range", survivor)
	}
	if !adjacent {
		return nil, fmt.Errorf("store: partitions %d and %d are not adjacent", donor, survivor)
	}
	bounds := append([]string(nil), p.bounds...)
	assign := append([]int(nil), p.assign...)
	for i, a := range assign {
		if a == donor {
			assign[i] = survivor
		}
	}
	// Coalesce same-owner neighbors: drop the boundary between them.
	for i := len(assign) - 1; i > 0; i-- {
		if assign[i] == assign[i-1] {
			assign = append(assign[:i], assign[i+1:]...)
			bounds = append(bounds[:i-1], bounds[i:]...)
		}
	}
	return &RangePartitioner{bounds: bounds, assign: assign}, nil
}
