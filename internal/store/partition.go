package store

import (
	"hash/fnv"
	"sort"
)

// Partitioner maps keys to partitions. Applications decide whether data is
// hash- or range-partitioned, and clients must know the scheme (Section
// 6.1; the paper stores it in Zookeeper, here it is part of the deployment
// configuration published through the registry).
type Partitioner interface {
	// N returns the number of partitions.
	N() int
	// PartitionOf returns the partition owning a key.
	PartitionOf(key string) int
	// PartitionsForRange returns the partitions that may hold keys in
	// [from, to] (to == "" means unbounded).
	PartitionsForRange(from, to string) []int
}

// HashPartitioner assigns keys by FNV hash modulo the partition count.
// Range scans must visit every partition.
type HashPartitioner struct {
	n int
}

// NewHashPartitioner creates a hash partitioner over n partitions.
func NewHashPartitioner(n int) *HashPartitioner {
	if n <= 0 {
		n = 1
	}
	return &HashPartitioner{n: n}
}

// N implements Partitioner.
func (p *HashPartitioner) N() int { return p.n }

// PartitionOf implements Partitioner.
func (p *HashPartitioner) PartitionOf(key string) int {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(p.n))
}

// PartitionsForRange implements Partitioner: hash partitioning scatters
// ranges everywhere, so scans go to all partitions.
func (p *HashPartitioner) PartitionsForRange(_, _ string) []int {
	out := make([]int, p.n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RangePartitioner assigns keys by sorted boundary keys: partition i holds
// keys in [bounds[i-1], bounds[i]), with the first partition unbounded
// below and the last unbounded above.
type RangePartitioner struct {
	bounds []string // len = n-1, sorted
}

// NewRangePartitioner creates a range partitioner with the given upper
// boundaries (exclusive) for all but the last partition. The boundaries
// are sorted; n = len(bounds)+1.
func NewRangePartitioner(bounds []string) *RangePartitioner {
	b := append([]string(nil), bounds...)
	sort.Strings(b)
	return &RangePartitioner{bounds: b}
}

// N implements Partitioner.
func (p *RangePartitioner) N() int { return len(p.bounds) + 1 }

// PartitionOf implements Partitioner.
func (p *RangePartitioner) PartitionOf(key string) int {
	// First boundary strictly greater than key identifies the partition.
	return sort.SearchStrings(p.bounds, key+"\x00")
}

// PartitionsForRange implements Partitioner: only partitions overlapping
// [from, to] are involved (this is what makes range-partitioned scans
// cheaper, Section 6.1).
func (p *RangePartitioner) PartitionsForRange(from, to string) []int {
	lo := p.PartitionOf(from)
	hi := p.N() - 1
	if to != "" {
		hi = p.PartitionOf(to)
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
