package store

import (
	"fmt"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// This file holds the client-side half of the online reconfiguration
// protocol: thin, totally-ordered admin commands the rebalance coordinator
// (internal/rebalance) composes into zero-downtime repartitionings —
// splits, merges, and the ordered aborts that make either recoverable when
// a coordinator dies between prepare and commit. They are exported for the
// coordinator, not for applications.

// AddRoute teaches the client the proposer addresses of a ring before that
// ring appears in any published schema (the coordinator must reach a split
// partition's ring while it is still warming).
func (c *Client) AddRoute(ring msg.RingID, addrs []transport.Addr) {
	c.smr.SetProposers(ring, addrs)
}

// PrepareSplit orders the range freeze through ring via (the global ring
// when available, else the source partition's own ring) and returns the
// frozen entries of the moved range, gathered specifically from the source
// partition src. epoch is the post-split epoch; newPart the partition
// index receiving [splitKey, ...); next the authoritative post-split
// mapping every replica installs (a replica's own mapping may be stale:
// reconfigurations ordered on rings it does not subscribe to never
// reached it).
//
//mrp:ordered
func (c *Client) PrepareSplit(via msg.RingID, src int, splitKey string, newPart int, epoch uint64, next Partitioner) ([]Entry, error) {
	o := op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: epoch,
		part: uint16(src), newPart: uint16(newPart), key: splitKey, pmap: next}
	results, err := c.smr.ExecuteGather(via, o.encode(), 1, func(raw []byte) (int, bool) {
		res, err := decodeResult(raw)
		if err != nil || res.status != statusOK {
			return 0, false
		}
		return int(res.partition), int(res.partition) == src
	})
	if err != nil {
		return nil, err
	}
	raw, ok := results[src]
	if !ok {
		return nil, fmt.Errorf("store: no prepare-split reply from partition %d", src)
	}
	res, err := decodeResult(raw)
	if err != nil {
		return nil, err
	}
	return res.entries, nil
}

// PrepareMergeDest arms the merge survivor: ordered on its ring, it makes
// every survivor replica accept epoch-tagged migrate chunks for the range
// it will own once the merge commits. Ordered before the donor freeze so
// an abort between the two has only this (side-effect-free) arming to
// undo.
//
//mrp:ordered
func (c *Client) PrepareMergeDest(destRing msg.RingID, donor, dest int, epoch uint64) error {
	o := op{kind: opPrepareReconfig, rkind: reconfigMergeDest, epoch: epoch,
		part: uint16(donor), newPart: uint16(dest)}
	res, err := c.exec(destRing, o)
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: prepare merge destination %d failed (status %d)", dest, res.status)
	}
	return nil
}

// PrepareMergeDonor orders the donor freeze through the donor's own ring
// and returns the donor's entire owned range: from this point every
// command on the donor — keyed ops and scans alike — is redirected, so
// the returned entries are exactly the state the survivor must end up
// with and nothing stale can be read from the donor afterwards.
//
//mrp:ordered
func (c *Client) PrepareMergeDonor(donorRing msg.RingID, donor, dest int, epoch uint64) ([]Entry, error) {
	o := op{kind: opPrepareReconfig, rkind: reconfigMergeDonor, epoch: epoch,
		part: uint16(donor), newPart: uint16(dest)}
	res, err := c.exec(donorRing, o)
	if err != nil {
		return nil, err
	}
	if res.status != statusOK {
		return nil, fmt.Errorf("store: prepare merge donor %d failed (status %d)", donor, res.status)
	}
	return res.entries, nil
}

// MigrateChunk streams one chunk of frozen entries onto the destination
// partition's ring; its replicas — warming (split) or receiving (merge) —
// install the entries in delivery order, before any client command can
// observe them.
//
//mrp:ordered
func (c *Client) MigrateChunk(ring msg.RingID, dest int, epoch uint64, entries []Entry) error {
	o := op{kind: opMigrate, epoch: epoch, part: uint16(dest)}
	for _, e := range entries {
		o.batch = append(o.batch, op{kind: opInsert, epoch: epoch, key: e.Key, value: e.Value})
	}
	res, err := c.exec(ring, o)
	if err != nil {
		return err
	}
	if res.status != statusOK || int(res.count) != len(entries) {
		return fmt.Errorf("store: migrate chunk applied %d/%d (status %d)", res.count, len(entries), res.status)
	}
	return nil
}

// ActivatePartition ends the new partition's warming phase: ordered on its
// ring after every migrated chunk, so a replica that serves any client
// command has necessarily installed the full moved range first.
//
//mrp:ordered
func (c *Client) ActivatePartition(ring msg.RingID, part int, epoch uint64) error {
	res, err := c.exec(ring, op{kind: opActivatePart, epoch: epoch, part: uint16(part)})
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: activate partition %d failed (status %d)", part, res.status)
	}
	return nil
}

// CommitSplit orders the split's ownership flip through ring via: the
// source partition drops the moved range and every replica on the ring
// adopts the new epoch. From this point stale clients are redirected to
// the published schema.
//
//mrp:ordered
func (c *Client) CommitSplit(via msg.RingID, src int, epoch uint64) error {
	res, err := c.exec(via, op{kind: opCommitReconfig, rkind: reconfigSplit, epoch: epoch, part: uint16(src)})
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: commit split failed (status %d)", res.status)
	}
	return nil
}

// CommitMerge orders the merge's ownership flip through the survivor's
// ring, after every migrate chunk: the survivor replicas adopt the merged
// mapping next (the donor's index drops out of the assignment) and the new
// epoch, and start serving the donor's range. The donor never commits — it
// stays frozen until RetirePartition tears its ring down.
//
//mrp:ordered
func (c *Client) CommitMerge(destRing msg.RingID, donor, dest int, epoch uint64, next Partitioner) error {
	o := op{kind: opCommitReconfig, rkind: reconfigMergeDest, epoch: epoch,
		part: uint16(donor), newPart: uint16(dest), pmap: next}
	res, err := c.exec(destRing, o)
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: commit merge failed (status %d)", res.status)
	}
	return nil
}

// AbortReconfig orders the inverse of a prepare through the given ring:
// replicas with pending state at the aborted epoch restore the
// pre-prepare mapping, unfreeze frozen ranges, and drop half-transferred
// entries; everyone else treats it as an idempotent duplicate, so it is
// safe to issue against a ring that never saw the prepare (a coordinator
// that crashed before ordering anything).
//
//mrp:ordered
func (c *Client) AbortReconfig(via msg.RingID, epoch uint64) error {
	res, err := c.exec(via, op{kind: opAbortReconfig, epoch: epoch})
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: abort reconfiguration failed (status %d)", res.status)
	}
	return nil
}
