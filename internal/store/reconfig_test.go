package store

import (
	"fmt"
	"testing"
)

func execOp(t *testing.T, sm *SM, o op) result {
	t.Helper()
	res, err := decodeResult(sm.Execute(o.encode()))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSMPrepareFreezesMovedRange drives one source-partition SM through
// prepare and commit and checks the freeze, redirect, scan, and drop
// semantics.
func TestSMPrepareFreezesMovedRange(t *testing.T) {
	sm := NewSM(1, NewRangePartitioner([]string{"g"}))
	for _, k := range []string{"h", "m", "q", "t"} {
		execOp(t, sm, op{kind: opInsert, epoch: 1, key: k, value: []byte("v-" + k)})
	}
	// Keys below the partition's range are redirected even before a split.
	if res := execOp(t, sm, op{kind: opRead, epoch: 1, key: "a"}); res.status != statusWrongEpoch {
		t.Fatalf("foreign key read = %+v", res)
	}

	res := execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 2, part: 1, newPart: 2, key: "p"})
	if res.status != statusOK || len(res.entries) != 2 {
		t.Fatalf("prepare = %+v", res)
	}
	if res.entries[0].Key != "q" || res.entries[1].Key != "t" {
		t.Fatalf("moved entries = %+v", res.entries)
	}
	// A second prepare at the same epoch is a retry after an abort whose
	// ordered abort may still be in flight: it resolves the old attempt
	// and re-freezes, returning the entries again. (Literal duplicates
	// cannot reach the SM — the SMR layer deduplicates client commands.)
	if res := execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 2, part: 1, newPart: 2, key: "p"}); len(res.entries) != 2 {
		t.Fatalf("re-prepare = %+v", res)
	}
	// Frozen range: reads and writes redirect with the current epoch.
	res = execOp(t, sm, op{kind: opRead, epoch: 1, key: "q"})
	if res.status != statusWrongEpoch || res.epoch != 1 {
		t.Fatalf("frozen read = %+v", res)
	}
	if res := execOp(t, sm, op{kind: opUpdate, epoch: 2, key: "t", value: []byte("x")}); res.status != statusWrongEpoch {
		t.Fatalf("frozen write = %+v", res)
	}
	// Unmoved keys are served throughout.
	if res := execOp(t, sm, op{kind: opRead, epoch: 1, key: "m"}); res.status != statusOK {
		t.Fatalf("kept read = %+v", res)
	}
	// Scans still report the physically present frozen range.
	if res := execOp(t, sm, op{kind: opScan, epoch: 1, key: "h", to: "z"}); len(res.entries) != 4 {
		t.Fatalf("migrating scan = %+v", res.entries)
	}
	// A batch touching any frozen key is rejected before applying anything.
	res = execOp(t, sm, op{kind: opBatch, epoch: 1, batch: []op{
		{kind: opInsert, key: "n", value: []byte("n")},
		{kind: opInsert, key: "s", value: []byte("s")},
	}})
	if res.status != statusWrongEpoch {
		t.Fatalf("mixed batch = %+v", res)
	}
	if _, ok := sm.Data().Get("n"); ok {
		t.Fatal("rejected batch partially applied")
	}

	execOp(t, sm, op{kind: opCommitReconfig, rkind: reconfigSplit, epoch: 2, part: 1})
	if sm.Epoch() != 2 {
		t.Fatalf("epoch after commit = %d", sm.Epoch())
	}
	if _, ok := sm.Data().Get("q"); ok {
		t.Fatal("moved range not dropped at commit")
	}
	res = execOp(t, sm, op{kind: opRead, epoch: 1, key: "q"})
	if res.status != statusWrongEpoch || res.epoch != 2 {
		t.Fatalf("post-commit read = %+v", res)
	}
	// Post-split scans exclude the moved range.
	if res := execOp(t, sm, op{kind: opScan, epoch: 2, key: "h", to: "z"}); len(res.entries) != 2 {
		t.Fatalf("post-commit scan = %+v", res.entries)
	}
	// Stale-epoch scans are redirected so the client re-plans its fan-out.
	if res := execOp(t, sm, op{kind: opScan, epoch: 1, key: "h", to: "z"}); res.status != statusWrongEpoch {
		t.Fatalf("stale scan = %+v", res)
	}
}

// TestSMWarmingLifecycle checks a split partition's replica: rejects
// client commands while warming, accepts migration chunks, serves after
// activation.
func TestSMWarmingLifecycle(t *testing.T) {
	base := NewRangePartitioner([]string{"g"})
	next, err := base.Split("p", 2)
	if err != nil {
		t.Fatal(err)
	}
	sm := NewSMAt(2, next, 2, true)
	if !sm.Warming() {
		t.Fatal("not warming")
	}
	if res := execOp(t, sm, op{kind: opRead, epoch: 2, key: "q"}); res.status != statusWrongEpoch {
		t.Fatalf("warming read = %+v", res)
	}
	res := execOp(t, sm, op{kind: opMigrate, epoch: 2, part: 2, batch: []op{
		{kind: opInsert, key: "q", value: []byte("vq")},
		{kind: opInsert, key: "t", value: []byte("vt")},
	}})
	if res.status != statusOK || res.count != 2 {
		t.Fatalf("migrate = %+v", res)
	}
	execOp(t, sm, op{kind: opActivatePart, epoch: 2, part: 2})
	if sm.Warming() || sm.Epoch() != 2 {
		t.Fatalf("after activate: warming=%v epoch=%d", sm.Warming(), sm.Epoch())
	}
	res = execOp(t, sm, op{kind: opRead, epoch: 2, key: "q"})
	if res.status != statusOK || string(res.value) != "vq" {
		t.Fatalf("activated read = %+v", res)
	}
	// Migration chunks are only valid while warming.
	if res := execOp(t, sm, op{kind: opMigrate, epoch: 2, part: 2, batch: nil}); res.status != statusError {
		t.Fatalf("late migrate = %+v", res)
	}
}

// TestSMSnapshotCarriesSchemaState checks that epoch, flags, and the
// (split) partitioner survive Snapshot/Restore — a replica recovering from
// checkpoint must keep redirecting for ranges it no longer owns.
func TestSMSnapshotCarriesSchemaState(t *testing.T) {
	sm := NewSM(1, NewRangePartitioner([]string{"g"}))
	for i := 0; i < 10; i++ {
		execOp(t, sm, op{kind: opInsert, epoch: 1, key: fmt.Sprintf("k%02d", i), value: []byte("v")})
	}
	execOp(t, sm, op{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 2, part: 1, newPart: 2, key: "k05"})

	restored := NewSM(1, NewRangePartitioner([]string{"g"}))
	restored.Restore(sm.Snapshot())
	if res := execOp(t, restored, op{kind: opRead, epoch: 1, key: "k07"}); res.status != statusWrongEpoch {
		t.Fatalf("restored frozen read = %+v", res)
	}
	if res := execOp(t, restored, op{kind: opRead, epoch: 1, key: "k03"}); res.status != statusOK {
		t.Fatalf("restored kept read = %+v", res)
	}
	// The restored replica applies the commit exactly like the original.
	execOp(t, sm, op{kind: opCommitReconfig, rkind: reconfigSplit, epoch: 2, part: 1})
	execOp(t, restored, op{kind: opCommitReconfig, rkind: reconfigSplit, epoch: 2, part: 1})
	if string(sm.Snapshot()) != string(restored.Snapshot()) {
		t.Fatal("snapshots diverged after commit")
	}
	if restored.Epoch() != 2 {
		t.Fatalf("restored epoch = %d", restored.Epoch())
	}
}

// TestOpCodecSplitKinds round-trips the rebalancing op kinds and the epoch
// field, and the wrong-epoch result status.
func TestOpCodecSplitKinds(t *testing.T) {
	ops := []op{
		{kind: opRead, epoch: 7, key: "k"},
		{kind: opPrepareReconfig, rkind: reconfigSplit, epoch: 9, part: 3, newPart: 4, key: "split"},
		{kind: opActivatePart, epoch: 9, part: 4},
		{kind: opCommitReconfig, rkind: reconfigSplit, epoch: 9, part: 3},
		{kind: opMigrate, epoch: 9, part: 4, batch: []op{{kind: opInsert, epoch: 9, key: "x", value: []byte("1")}}},
	}
	for _, o := range ops {
		got, err := decodeOp(o.encode())
		if err != nil {
			t.Fatalf("%d: %v", o.kind, err)
		}
		if got.kind != o.kind || got.rkind != o.rkind || got.epoch != o.epoch || got.key != o.key ||
			got.part != o.part || got.newPart != o.newPart || len(got.batch) != len(o.batch) {
			t.Fatalf("round trip %+v -> %+v", o, got)
		}
	}
	r := result{status: statusWrongEpoch, partition: 2, epoch: 5}
	got, err := decodeResult(r.encode())
	if err != nil || got.status != statusWrongEpoch || got.epoch != 5 || got.partition != 2 {
		t.Fatalf("result round trip = %+v, %v", got, err)
	}
}
