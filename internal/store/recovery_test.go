package store

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

// deployRangeStore deploys a two-partition range-partitioned store
// (boundary "m") suited for split-then-recover scenarios.
func deployRangeStore(t *testing.T, global bool) *Deployment {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := Deploy(DeployConfig{
		Net:         net,
		Partitions:  2,
		Replicas:    3,
		GlobalRing:  global,
		Partitioner: NewRangePartitioner([]string{"m"}),
		StorageMode: storage.InMemory,
		// Rate leveling keeps the merge of busy partition rings with the
		// mostly idle global ring advancing (Section 4).
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	return d
}

// liveSplit drives the six-step online split protocol inline (the same
// sequence rebalance.Coordinator orders), carving [splitKey, hi) out of
// partition src, and returns the new partition's index.
func liveSplit(t *testing.T, d *Deployment, cl *Client, src int, splitKey string) int {
	t.Helper()
	cur, ok := d.Partitioner().(*RangePartitioner)
	if !ok {
		t.Fatalf("not range partitioned: %T", d.Partitioner())
	}
	epoch := d.Epoch() + 1
	newPart := cur.N()
	next, err := cur.Split(splitKey, newPart)
	if err != nil {
		t.Fatal(err)
	}
	ring, addrs, err := d.AddPartition(next, newPart, epoch)
	if err != nil {
		t.Fatal(err)
	}
	cl.AddRoute(ring, addrs)
	via := d.GlobalRingID()
	if via == 0 || !d.PartitionOnGlobal(src) {
		via = d.PartitionRing(src)
	}
	if err := cl.RevokeLease(via); err != nil {
		t.Fatal(err)
	}
	moved, err := cl.PrepareSplit(via, src, splitKey, newPart, epoch, next)
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(moved); lo += 64 {
		hi := lo + 64
		if hi > len(moved) {
			hi = len(moved)
		}
		if err := cl.MigrateChunk(ring, newPart, epoch, moved[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.ActivatePartition(ring, newPart, epoch); err != nil {
		t.Fatal(err)
	}
	d.AdoptReconfig(epoch, next)
	if err := cl.CommitSplit(via, src, epoch); err != nil {
		t.Fatal(err)
	}
	return newPart
}

// waitConverged polls until two replicas of a partition have identical
// state-machine snapshots at the wanted schema epoch (they can transiently
// match at an older epoch while an ordered commit is still in flight),
// then returns a scratch SM restored from that snapshot: assertions
// against it cannot race with the live replica goroutines still applying
// rate-leveling deliveries.
func waitConverged(t *testing.T, d *Deployment, p, ra, rb int, wantEpoch uint64) *SM {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		sa := d.ReplicaAt(p, ra).Replica.StateSnapshot()
		sb := d.ReplicaAt(p, rb).Replica.StateSnapshot()
		if bytes.Equal(sa, sb) {
			scratch := NewSM(p, NewHashPartitioner(1))
			scratch.Restore(sa)
			if scratch.Epoch() == wantEpoch {
				return scratch
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas %d and %d of partition %d did not converge at epoch %d", ra, rb, p, wantEpoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRecoverSplitPartitionReplica crashes and recovers a replica of a
// partition created by a live split. No replica of the split partition has
// ever checkpointed, so recovery is a cold start from the partition's
// deterministic birth state: the replica re-subscribes the runtime ring
// and replays everything — migration chunks, activation, and post-split
// client commands — from the acceptors.
func TestRecoverSplitPartitionReplica(t *testing.T) {
	d := deployRangeStore(t, true)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 10; i++ {
		for _, prefix := range []string{"a", "n", "t"} {
			if err := cl.Insert(fmt.Sprintf("%s%02d", prefix, i), []byte("v0")); err != nil {
				t.Fatal(err)
			}
		}
	}

	newPart := liveSplit(t, d, cl, 1, "t")
	if newPart != 2 {
		t.Fatalf("new partition = %d", newPart)
	}

	d.CrashReplica(newPart, 1)
	// The split partition keeps serving on its surviving majority.
	for i := 10; i < 15; i++ {
		if err := cl.Insert(fmt.Sprintf("t%02d", i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}

	if err := d.RecoverReplica(newPart, 1); err != nil {
		t.Fatalf("recover split-partition replica: %v", err)
	}
	for i := 15; i < 18; i++ {
		if err := cl.Insert(fmt.Sprintf("t%02d", i), []byte("v2")); err != nil {
			t.Fatal(err)
		}
	}
	rec := waitConverged(t, d, newPart, 0, 1, 2)
	if rec.Epoch() != 2 || rec.Warming() {
		t.Fatalf("recovered SM: epoch=%d warming=%v", rec.Epoch(), rec.Warming())
	}
	// The recovered replica serves reads for its range and redirects keys
	// it does not own under the current mapping.
	if res := execOp(t, rec, op{kind: opRead, epoch: 2, key: "t00"}); res.status != statusOK || string(res.value) != "v0" {
		t.Fatalf("owned read on recovered replica = %+v", res)
	}
	if res := execOp(t, rec, op{kind: opRead, epoch: 2, key: "n00"}); res.status != statusWrongEpoch {
		t.Fatalf("migrated-away read on recovered replica = %+v", res)
	}

	// With another replica down, quorum on the split ring depends on the
	// recovered one: commands on the moved range still complete.
	d.CrashReplica(newPart, 2)
	if err := cl.Insert("t90", []byte("after")); err != nil {
		t.Fatalf("write needing the recovered replica's vote: %v", err)
	}
	if v, err := cl.Read("t90"); err != nil || string(v) != "after" {
		t.Fatalf("read needing the recovered replica: %q, %v", v, err)
	}
}

// TestRecoverSplitPartitionReplicaFromCheckpoint covers the checkpoint
// transfer path on a runtime-subscribed ring: a surviving peer of the
// split partition has checkpointed (at the post-split epoch), so the
// recovering replica installs that state and rejoins its ring at the
// recovered frontier instead of replaying from scratch.
func TestRecoverSplitPartitionReplicaFromCheckpoint(t *testing.T) {
	d := deployRangeStore(t, true)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if err := cl.Insert(fmt.Sprintf("t%02d", i), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	newPart := liveSplit(t, d, cl, 1, "t")

	d.CrashReplica(newPart, 2)
	for i := 10; i < 15; i++ {
		if err := cl.Insert(fmt.Sprintf("t%02d", i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	// Both surviving peers checkpoint; Q_R = 2 of {self, peer, peer}.
	d.ReplicaAt(newPart, 0).Replica.Checkpoint()
	d.ReplicaAt(newPart, 1).Replica.Checkpoint()
	if ck, ok := d.ReplicaAt(newPart, 0).Ckpt.Load(); !ok || ck.Epoch != 2 {
		t.Fatalf("peer checkpoint epoch = %d (found %v), want 2", ck.Epoch, ok)
	}

	if err := d.RecoverReplica(newPart, 2); err != nil {
		t.Fatalf("recover from checkpoint: %v", err)
	}
	if err := cl.Insert("t99", []byte("post")); err != nil {
		t.Fatal(err)
	}
	rec := waitConverged(t, d, newPart, 0, 2, 2)
	if rec.Epoch() != 2 || rec.Warming() {
		t.Fatalf("recovered SM: epoch=%d warming=%v", rec.Epoch(), rec.Warming())
	}
}

// TestRecoverSeedReplicaStaleCheckpoint is the stale-schema regression: a
// seed replica checkpoints, crashes, misses a live split entirely, and
// recovers from its own pre-split (epoch 1) checkpoint. Ring replay must
// deliver the split commands so the replica learns the new schema, drops
// the moved range, and redirects for migrated keys.
func TestRecoverSeedReplicaStaleCheckpoint(t *testing.T) {
	d := deployRangeStore(t, true)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 10; i++ {
		for _, prefix := range []string{"n", "t"} {
			if err := cl.Insert(fmt.Sprintf("%s%02d", prefix, i), []byte("v0")); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.ReplicaAt(1, 2).Replica.Checkpoint()
	if ck, ok := d.ReplicaAt(1, 2).Ckpt.Load(); !ok || ck.Epoch != 1 {
		t.Fatalf("pre-split checkpoint epoch = %d (found %v), want 1", ck.Epoch, ok)
	}
	d.CrashReplica(1, 2)

	newPart := liveSplit(t, d, cl, 1, "t")
	if newPart != 2 {
		t.Fatalf("new partition = %d", newPart)
	}
	for i := 10; i < 15; i++ {
		if err := cl.Insert(fmt.Sprintf("n%02d", i), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}

	if err := d.RecoverReplica(1, 2); err != nil {
		t.Fatalf("recover with stale checkpoint: %v", err)
	}
	rec := waitConverged(t, d, 1, 0, 2, 2)
	if rec.Epoch() != 2 {
		t.Fatalf("recovered replica did not learn the new schema: epoch=%d", rec.Epoch())
	}
	if _, still := rec.Data().Get("t00"); still {
		t.Fatal("recovered replica kept the migrated range")
	}
	if res := execOp(t, rec, op{kind: opRead, epoch: 2, key: "n00"}); res.status != statusOK {
		t.Fatalf("kept read on recovered replica = %+v", res)
	}
	if res := execOp(t, rec, op{kind: opRead, epoch: 1, key: "t05"}); res.status != statusWrongEpoch || res.epoch != 2 {
		t.Fatalf("migrated read on recovered replica = %+v", res)
	}
}

// TestRecoverUncommittedSplitPartitionFails: a provisioned-but-uncommitted
// split partition is not part of any schema yet and must be rejected.
func TestRecoverUncommittedSplitPartitionFails(t *testing.T) {
	d := deployRangeStore(t, true)
	next, err := d.Partitioner().(*RangePartitioner).Split("t", 2)
	if err != nil {
		t.Fatal(err)
	}
	part := 2
	_, _, err = d.AddPartition(next, part, d.Epoch()+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RecoverReplica(part, 0); err == nil {
		t.Fatal("recovery of an uncommitted split partition succeeded")
	}
	if err := d.RemovePartition(part); err != nil {
		t.Fatal(err)
	}
	if err := d.RecoverReplica(99, 0); err == nil {
		t.Fatal("recovery of a non-existent partition succeeded")
	}
}

// deafEndpoint swallows its inbox so a recovery conversation on it can
// never assemble a quorum, and records whether it was closed.
type deafEndpoint struct {
	transport.Endpoint
	closed *atomic.Int32
}

func (e *deafEndpoint) Inbox() <-chan transport.Envelope { return nil }

func (e *deafEndpoint) Close() error {
	e.closed.Add(1)
	return e.Endpoint.Close()
}

// TestRecoverReplicaClosesEndpointOnFailure is the endpoint-leak
// regression: when recovery.Recover fails, the transient "-recovery"
// endpoint must still be closed, or the address can never be reused (a
// second attempt used to panic on the leaked live endpoint).
func TestRecoverReplicaClosesEndpointOnFailure(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	var closed atomic.Int32
	d, err := Deploy(DeployConfig{
		EndpointFor: func(a transport.Addr) (transport.Endpoint, error) {
			ep := net.Endpoint(a)
			if strings.HasSuffix(string(a), "-recovery") {
				return &deafEndpoint{Endpoint: ep, closed: &closed}, nil
			}
			return ep, nil
		},
		Partitions:   1,
		Replicas:     3,
		StorageMode:  storage.InMemory,
		RetryTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	old := recoverTimeout
	recoverTimeout = 300 * time.Millisecond
	t.Cleanup(func() { recoverTimeout = old })

	d.CrashReplica(0, 2)
	for attempt := 1; attempt <= 2; attempt++ {
		if err := d.RecoverReplica(0, 2); err == nil {
			t.Fatalf("attempt %d: recovery over a deaf endpoint succeeded", attempt)
		}
		if got := closed.Load(); got != int32(attempt) {
			t.Fatalf("attempt %d: recovery endpoint closed %d times", attempt, got)
		}
	}
}
