package store

import (
	"encoding/json"
	"errors"
	"fmt"

	"mrp/internal/msg"
	"mrp/internal/registry"
	"mrp/internal/transport"
)

// SchemaPath is where the partitioning schema lives in the coordination
// service ("the partitioning schema is stored in Zookeeper and accessible
// to all processes", Section 7.2).
const SchemaPath = "/mrp-store/schema"

// ErrNoSchema reports that the coordination service has no published
// schema yet — a legitimate state for a deployment that never published,
// as opposed to a registry error or a corrupt schema node.
var ErrNoSchema = errors.New("store: no schema published")

// Schema is the client-visible description of a deployment: how keys map
// to partitions, which ring orders each partition's commands, and where
// each partition's replicas are.
//
// # Versioned-schema protocol
//
// The schema is no longer a load-once snapshot. Every published schema
// carries an Epoch, and every client command carries the epoch it was
// routed under. The protocol between publishers, replicas, and clients:
//
//  1. Exactly one writer (the rebalance coordinator) advances the schema,
//     using compare-and-set on the registry node so a concurrent publisher
//     is detected instead of silently overwritten (PublishSchemaCAS).
//  2. Replicas learn epoch changes only through totally-ordered commands
//     on their rings (opPrepareReconfig / opCommitReconfig /
//     opAbortReconfig), never by watching the registry — so all replicas
//     of a partition switch mappings at the same logical point in the
//     delivery order.
//  3. Clients cache the schema and watch the registry node
//     (WatchSchema); a replica answering statusWrongEpoch is the typed
//     redirect telling a stale client to refresh and re-route before
//     retrying. Watch delivery is coalescing and non-blocking, so slow
//     clients can never stall the registry.
//
// Partition indexes are stable across epochs: splits only append indexes
// and merges only retire them — neither renumbers a surviving partition
// (see RangePartitioner.Split and RangePartitioner.Merge). A retired
// index keeps its slot in the per-partition arrays, marked in Retired,
// until the index space shrinks past it.
type Schema struct {
	// Epoch is the schema version; bumped by one on every rebalance.
	Epoch uint64 `json:"epoch"`
	// Kind is "hash" or "range".
	Kind string `json:"kind"`
	// Partitions is the partition count.
	Partitions int `json:"partitions"`
	// Bounds are the range partitioner's boundary keys (range
	// partitioning; len = partitions-1).
	Bounds []string `json:"bounds,omitempty"`
	// Assign maps each key slot (between consecutive bounds) to the
	// partition index owning it; nil means slot i is partition i. Splits
	// populate this so existing partitions keep their indexes.
	Assign []int `json:"assign,omitempty"`
	// Replicas lists, per partition, the replica addresses.
	Replicas [][]transport.Addr `json:"replicas"`
	// Rings lists, per partition, the ring ordering its commands.
	Rings []uint16 `json:"rings"`
	// GlobalRing reports whether cross-partition commands are ordered
	// through a global ring.
	GlobalRing bool `json:"globalRing"`
	// GlobalRingID is the global ring's identifier when GlobalRing is set.
	GlobalRingID uint16 `json:"globalRingID,omitempty"`
	// OnGlobal reports, per partition, whether its replicas subscribe to
	// the global ring. Partitions added by a live split are not members of
	// the global ring; scans touching them fan out per partition.
	OnGlobal []bool `json:"onGlobal,omitempty"`
	// Retired marks partition indexes merged away by an online merge: no
	// key routes to them, their rings are torn down, and their replica
	// lists are empty. Clients skip them when building routes.
	Retired []bool `json:"retired,omitempty"`
}

// topologySchema snapshots the membership half of the schema — the
// committed partition count and, per partition, the replica addresses,
// ring, and global-ring subscription. It is what both Deploy and
// RecoverReplica feed the schemaMemberships builder, so deployment and
// recovery agree on ring order and roles by construction. Callers hold
// d.mu (read or write).
func (d *Deployment) topologySchema() Schema {
	s := Schema{
		Epoch:      d.epoch,
		Partitions: d.partitioner.N(),
		GlobalRing: d.cfg.GlobalRing,
	}
	if d.cfg.GlobalRing {
		s.GlobalRingID = uint16(d.globalRing())
	}
	for p := 0; p < s.Partitions && p < len(d.parts); p++ {
		if d.parts[p].retired {
			s.Replicas = append(s.Replicas, nil)
			s.Rings = append(s.Rings, 0)
			s.OnGlobal = append(s.OnGlobal, false)
			s.Retired = append(s.Retired, true)
			continue
		}
		s.Replicas = append(s.Replicas, append([]transport.Addr(nil), d.parts[p].addrs...))
		s.Rings = append(s.Rings, uint16(d.parts[p].ring))
		s.OnGlobal = append(s.OnGlobal, d.parts[p].onGlobal)
		s.Retired = append(s.Retired, false)
	}
	return s
}

// buildSchema snapshots the deployment's committed topology, including the
// key-mapping half clients need. Callers hold d.mu (read or write).
func (d *Deployment) buildSchema() (Schema, error) {
	s := d.topologySchema()
	switch p := d.partitioner.(type) {
	case *HashPartitioner:
		s.Kind = "hash"
	case *RangePartitioner:
		s.Kind = "range"
		s.Bounds = p.Bounds()
		s.Assign = p.Assignments()
	default:
		return Schema{}, fmt.Errorf("store: partitioner %T cannot be published", d.partitioner)
	}
	return s, nil
}

// PublishSchema writes the deployment's schema to the coordination
// service so clients can discover partitioning and replica placement.
// Rebalance coordinators use PublishSchemaCAS instead.
func (d *Deployment) PublishSchema(reg *registry.Registry) error {
	d.mu.RLock()
	s, err := d.buildSchema()
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	reg.Set(SchemaPath, data)
	d.setLeaseRegistry(reg)
	return nil
}

// PublishSchemaCAS publishes the current schema only if the registry node
// is still at the expected version (0 = not yet published), returning the
// new version. A false result means a concurrent publisher advanced the
// schema; the caller must re-read and reconcile rather than overwrite.
func (d *Deployment) PublishSchemaCAS(reg *registry.Registry, expect uint64) (uint64, bool, error) {
	d.mu.RLock()
	s, err := d.buildSchema()
	d.mu.RUnlock()
	if err != nil {
		return 0, false, err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return 0, false, err
	}
	v, ok := reg.CompareAndSet(SchemaPath, data, expect)
	d.setLeaseRegistry(reg)
	return v, ok, nil
}

// PublishSchemaAsCAS publishes the deployment's current schema under the
// caller-chosen epoch instead of the committed one. It exists for exactly
// one caller: an aborted reconfiguration that already published its
// schema must overwrite it with the reverted mapping, and republishing at
// the (lower) reverted epoch would wedge every client that saw the
// aborted epoch — client refreshes rightly refuse to install an older
// epoch. Republishing the reverted mapping under the aborted epoch keeps
// client epochs monotonic; the next reconfiguration reuses the same epoch
// with a new mapping, which watchers install because refreshes accept
// equal epochs.
func (d *Deployment) PublishSchemaAsCAS(reg *registry.Registry, epoch, expect uint64) (uint64, bool, error) {
	d.mu.RLock()
	s, err := d.buildSchema()
	d.mu.RUnlock()
	if err != nil {
		return 0, false, err
	}
	s.Epoch = epoch
	data, err := json.Marshal(s)
	if err != nil {
		return 0, false, err
	}
	v, ok := reg.CompareAndSet(SchemaPath, data, expect)
	d.setLeaseRegistry(reg)
	return v, ok, nil
}

// LoadSchema reads the published schema from the coordination service.
func LoadSchema(reg *registry.Registry) (Schema, error) {
	s, _, err := LoadSchemaAt(reg)
	return s, err
}

// LoadSchemaAt reads the published schema together with its registry
// version (the CAS token for the next publish).
func LoadSchemaAt(reg *registry.Registry) (Schema, uint64, error) {
	data, version, ok := reg.Get(SchemaPath)
	if !ok {
		return Schema{}, 0, fmt.Errorf("%w at %s", ErrNoSchema, SchemaPath)
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, 0, fmt.Errorf("store: bad schema: %w", err)
	}
	return s, version, nil
}

// WatchSchema returns a coalescing event channel that fires whenever the
// published schema changes; watchers re-read with LoadSchema on wakeup.
func WatchSchema(reg *registry.Registry) <-chan registry.Event {
	return reg.Watch(SchemaPath)
}

// PartitionerFor builds the partitioner the schema describes.
func (s Schema) PartitionerFor() (Partitioner, error) {
	switch s.Kind {
	case "hash":
		return NewHashPartitioner(s.Partitions), nil
	case "range":
		if s.Assign == nil {
			// Legacy schema: slot i is partition i, so slots == partitions.
			if len(s.Bounds) != s.Partitions-1 {
				return nil, fmt.Errorf("store: schema has %d bounds for %d partitions",
					len(s.Bounds), s.Partitions)
			}
			return NewRangePartitioner(s.Bounds), nil
		}
		// Assigned schema: slot and partition counts diverge once a merge
		// coalesces slots or retires an index; only their relation holds.
		return newRangePartitionerAssigned(s.Bounds, s.Assign)
	default:
		return nil, fmt.Errorf("store: unknown partitioning kind %q", s.Kind)
	}
}

// RingOf returns the ring ordering partition p's commands, falling back to
// the legacy static mapping for schemas published before rings were
// explicit.
func (s Schema) RingOf(p int) msg.RingID {
	if p < len(s.Rings) {
		return msg.RingID(s.Rings[p])
	}
	return msg.RingID(p + 1)
}
