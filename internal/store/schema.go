package store

import (
	"encoding/json"
	"fmt"

	"mrp/internal/registry"
	"mrp/internal/transport"
)

// schemaPath is where the partitioning schema lives in the coordination
// service ("the partitioning schema is stored in Zookeeper and accessible
// to all processes", Section 7.2).
const schemaPath = "/mrp-store/schema"

// Schema is the client-visible description of a deployment: how keys map
// to partitions and where each partition's replicas are.
type Schema struct {
	// Kind is "hash" or "range".
	Kind string `json:"kind"`
	// Partitions is the partition count (hash partitioning).
	Partitions int `json:"partitions"`
	// Bounds are the range partitioner's boundary keys (range
	// partitioning; len = partitions-1).
	Bounds []string `json:"bounds,omitempty"`
	// Replicas lists, per partition, the replica addresses.
	Replicas [][]transport.Addr `json:"replicas"`
	// GlobalRing reports whether cross-partition commands are ordered
	// through a global ring.
	GlobalRing bool `json:"globalRing"`
}

// PublishSchema writes the deployment's schema to the coordination
// service so clients can discover partitioning and replica placement.
func (d *Deployment) PublishSchema(reg *registry.Registry) error {
	s := Schema{
		Partitions: d.cfg.Partitions,
		GlobalRing: d.cfg.GlobalRing,
	}
	switch p := d.cfg.Partitioner.(type) {
	case *HashPartitioner:
		s.Kind = "hash"
	case *RangePartitioner:
		s.Kind = "range"
		s.Bounds = append([]string(nil), p.bounds...)
	default:
		return fmt.Errorf("store: partitioner %T cannot be published", d.cfg.Partitioner)
	}
	for p := 0; p < d.cfg.Partitions; p++ {
		var addrs []transport.Addr
		for r := 0; r < d.cfg.Replicas; r++ {
			addrs = append(addrs, d.cfg.AddrFor(p, r))
		}
		s.Replicas = append(s.Replicas, addrs)
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	reg.Set(schemaPath, data)
	return nil
}

// LoadSchema reads the published schema from the coordination service.
func LoadSchema(reg *registry.Registry) (Schema, error) {
	data, _, ok := reg.Get(schemaPath)
	if !ok {
		return Schema{}, fmt.Errorf("store: no schema published at %s", schemaPath)
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, fmt.Errorf("store: bad schema: %w", err)
	}
	return s, nil
}

// PartitionerFor builds the partitioner the schema describes.
func (s Schema) PartitionerFor() (Partitioner, error) {
	switch s.Kind {
	case "hash":
		return NewHashPartitioner(s.Partitions), nil
	case "range":
		if len(s.Bounds) != s.Partitions-1 {
			return nil, fmt.Errorf("store: schema has %d bounds for %d partitions",
				len(s.Bounds), s.Partitions)
		}
		return NewRangePartitioner(s.Bounds), nil
	default:
		return nil, fmt.Errorf("store: unknown partitioning kind %q", s.Kind)
	}
}
