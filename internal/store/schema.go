package store

import (
	"encoding/json"
	"fmt"

	"mrp/internal/msg"
	"mrp/internal/registry"
	"mrp/internal/transport"
)

// schemaPath is where the partitioning schema lives in the coordination
// service ("the partitioning schema is stored in Zookeeper and accessible
// to all processes", Section 7.2).
const schemaPath = "/mrp-store/schema"

// Schema is the client-visible description of a deployment: how keys map
// to partitions, which ring orders each partition's commands, and where
// each partition's replicas are.
//
// # Versioned-schema protocol
//
// The schema is no longer a load-once snapshot. Every published schema
// carries an Epoch, and every client command carries the epoch it was
// routed under. The protocol between publishers, replicas, and clients:
//
//  1. Exactly one writer (the rebalance coordinator) advances the schema,
//     using compare-and-set on the registry node so a concurrent publisher
//     is detected instead of silently overwritten (PublishSchemaCAS).
//  2. Replicas learn epoch changes only through totally-ordered commands
//     on their rings (opPrepareSplit / opCommitSplit), never by watching
//     the registry — so all replicas of a partition switch mappings at the
//     same logical point in the delivery order.
//  3. Clients cache the schema and watch the registry node
//     (WatchSchema); a replica answering statusWrongEpoch is the typed
//     redirect telling a stale client to refresh and re-route before
//     retrying. Watch delivery is coalescing and non-blocking, so slow
//     clients can never stall the registry.
//
// A schema with a higher Epoch always describes a superset of the
// partitions of its predecessor: splits only append partition indexes,
// they never renumber existing ones (see RangePartitioner.Split).
type Schema struct {
	// Epoch is the schema version; bumped by one on every rebalance.
	Epoch uint64 `json:"epoch"`
	// Kind is "hash" or "range".
	Kind string `json:"kind"`
	// Partitions is the partition count.
	Partitions int `json:"partitions"`
	// Bounds are the range partitioner's boundary keys (range
	// partitioning; len = partitions-1).
	Bounds []string `json:"bounds,omitempty"`
	// Assign maps each key slot (between consecutive bounds) to the
	// partition index owning it; nil means slot i is partition i. Splits
	// populate this so existing partitions keep their indexes.
	Assign []int `json:"assign,omitempty"`
	// Replicas lists, per partition, the replica addresses.
	Replicas [][]transport.Addr `json:"replicas"`
	// Rings lists, per partition, the ring ordering its commands.
	Rings []uint16 `json:"rings"`
	// GlobalRing reports whether cross-partition commands are ordered
	// through a global ring.
	GlobalRing bool `json:"globalRing"`
	// GlobalRingID is the global ring's identifier when GlobalRing is set.
	GlobalRingID uint16 `json:"globalRingID,omitempty"`
	// OnGlobal reports, per partition, whether its replicas subscribe to
	// the global ring. Partitions added by a live split are not members of
	// the global ring; scans touching them fan out per partition.
	OnGlobal []bool `json:"onGlobal,omitempty"`
}

// topologySchema snapshots the membership half of the schema — the
// committed partition count and, per partition, the replica addresses,
// ring, and global-ring subscription. It is what both Deploy and
// RecoverReplica feed the schemaMemberships builder, so deployment and
// recovery agree on ring order and roles by construction. Callers hold
// d.mu (read or write).
func (d *Deployment) topologySchema() Schema {
	s := Schema{
		Epoch:      d.epoch,
		Partitions: d.partitioner.N(),
		GlobalRing: d.cfg.GlobalRing,
	}
	if d.cfg.GlobalRing {
		s.GlobalRingID = uint16(d.globalRing())
	}
	for p := 0; p < s.Partitions && p < len(d.parts); p++ {
		s.Replicas = append(s.Replicas, append([]transport.Addr(nil), d.parts[p].addrs...))
		s.Rings = append(s.Rings, uint16(d.parts[p].ring))
		s.OnGlobal = append(s.OnGlobal, d.parts[p].onGlobal)
	}
	return s
}

// buildSchema snapshots the deployment's committed topology, including the
// key-mapping half clients need. Callers hold d.mu (read or write).
func (d *Deployment) buildSchema() (Schema, error) {
	s := d.topologySchema()
	switch p := d.partitioner.(type) {
	case *HashPartitioner:
		s.Kind = "hash"
	case *RangePartitioner:
		s.Kind = "range"
		s.Bounds = p.Bounds()
		s.Assign = p.Assignments()
	default:
		return Schema{}, fmt.Errorf("store: partitioner %T cannot be published", d.partitioner)
	}
	return s, nil
}

// PublishSchema writes the deployment's schema to the coordination
// service so clients can discover partitioning and replica placement.
// Rebalance coordinators use PublishSchemaCAS instead.
func (d *Deployment) PublishSchema(reg *registry.Registry) error {
	d.mu.RLock()
	s, err := d.buildSchema()
	d.mu.RUnlock()
	if err != nil {
		return err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return err
	}
	reg.Set(schemaPath, data)
	return nil
}

// PublishSchemaCAS publishes the current schema only if the registry node
// is still at the expected version (0 = not yet published), returning the
// new version. A false result means a concurrent publisher advanced the
// schema; the caller must re-read and reconcile rather than overwrite.
func (d *Deployment) PublishSchemaCAS(reg *registry.Registry, expect uint64) (uint64, bool, error) {
	d.mu.RLock()
	s, err := d.buildSchema()
	d.mu.RUnlock()
	if err != nil {
		return 0, false, err
	}
	data, err := json.Marshal(s)
	if err != nil {
		return 0, false, err
	}
	v, ok := reg.CompareAndSet(schemaPath, data, expect)
	return v, ok, nil
}

// LoadSchema reads the published schema from the coordination service.
func LoadSchema(reg *registry.Registry) (Schema, error) {
	s, _, err := LoadSchemaAt(reg)
	return s, err
}

// LoadSchemaAt reads the published schema together with its registry
// version (the CAS token for the next publish).
func LoadSchemaAt(reg *registry.Registry) (Schema, uint64, error) {
	data, version, ok := reg.Get(schemaPath)
	if !ok {
		return Schema{}, 0, fmt.Errorf("store: no schema published at %s", schemaPath)
	}
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return Schema{}, 0, fmt.Errorf("store: bad schema: %w", err)
	}
	return s, version, nil
}

// WatchSchema returns a coalescing event channel that fires whenever the
// published schema changes; watchers re-read with LoadSchema on wakeup.
func WatchSchema(reg *registry.Registry) <-chan registry.Event {
	return reg.Watch(schemaPath)
}

// PartitionerFor builds the partitioner the schema describes.
func (s Schema) PartitionerFor() (Partitioner, error) {
	switch s.Kind {
	case "hash":
		return NewHashPartitioner(s.Partitions), nil
	case "range":
		if len(s.Bounds) != s.Partitions-1 {
			return nil, fmt.Errorf("store: schema has %d bounds for %d partitions",
				len(s.Bounds), s.Partitions)
		}
		if s.Assign == nil {
			return NewRangePartitioner(s.Bounds), nil
		}
		return newRangePartitionerAssigned(s.Bounds, s.Assign)
	default:
		return nil, fmt.Errorf("store: unknown partitioning kind %q", s.Kind)
	}
}

// RingOf returns the ring ordering partition p's commands, falling back to
// the legacy static mapping for schemas published before rings were
// explicit.
func (s Schema) RingOf(p int) msg.RingID {
	if p < len(s.Rings) {
		return msg.RingID(s.Rings[p])
	}
	return msg.RingID(p + 1)
}
