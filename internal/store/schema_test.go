package store

import (
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/registry"
	"mrp/internal/storage"
)

func TestSchemaPublishLoadHash(t *testing.T) {
	d := testDeploy(t, true, 3)
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "hash" || s.Partitions != 3 || !s.GlobalRing {
		t.Fatalf("schema = %+v", s)
	}
	if len(s.Replicas) != 3 || len(s.Replicas[0]) != 3 {
		t.Fatalf("replicas = %+v", s.Replicas)
	}
	p, err := s.PartitionerFor()
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt partitioner must agree with the deployment's.
	for _, k := range []string{"a", "user42", "zzz"} {
		if p.PartitionOf(k) != d.Partitioner().PartitionOf(k) {
			t.Fatalf("partitioner mismatch for %q", k)
		}
	}
}

func TestSchemaPublishLoadRange(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	part := NewRangePartitioner([]string{"m"})
	d, err := Deploy(DeployConfig{
		Net: net, Partitions: 2, Replicas: 3,
		Partitioner: part, StorageMode: storage.InMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop(); net.Close() })
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "range" || len(s.Bounds) != 1 || s.Bounds[0] != "m" {
		t.Fatalf("schema = %+v", s)
	}
	p, _ := s.PartitionerFor()
	if p.PartitionOf("a") != 0 || p.PartitionOf("z") != 1 {
		t.Fatal("range partitioner mismatch")
	}
}

// TestSchemaEpochAndRings checks the versioned-schema fields a freshly
// deployed store publishes: epoch 1, explicit per-partition rings, and
// global-ring membership flags.
func TestSchemaEpochAndRings(t *testing.T) {
	d := testDeploy(t, true, 3)
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	s, version, err := LoadSchemaAt(reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 1 || version != 1 {
		t.Fatalf("epoch = %d, registry version = %d", s.Epoch, version)
	}
	if len(s.Rings) != 3 || s.RingOf(0) != 1 || s.RingOf(2) != 3 {
		t.Fatalf("rings = %v", s.Rings)
	}
	if s.GlobalRingID != 4 {
		t.Fatalf("global ring = %d", s.GlobalRingID)
	}
	for p, on := range s.OnGlobal {
		if !on {
			t.Fatalf("partition %d not on global ring", p)
		}
	}
}

// TestSchemaCASPublish checks that a publisher with a stale registry
// version cannot overwrite a newer schema.
func TestSchemaCASPublish(t *testing.T) {
	d := testDeploy(t, false, 2)
	reg := registry.New()
	v, ok, err := d.PublishSchemaCAS(reg, 0)
	if err != nil || !ok || v != 1 {
		t.Fatalf("first CAS publish = %d %v %v", v, ok, err)
	}
	if _, ok, _ := d.PublishSchemaCAS(reg, 0); ok {
		t.Fatal("create-CAS on existing schema succeeded")
	}
	v, ok, err = d.PublishSchemaCAS(reg, 1)
	if err != nil || !ok || v != 2 {
		t.Fatalf("second CAS publish = %d %v %v", v, ok, err)
	}
	if _, ok, _ := d.PublishSchemaCAS(reg, 1); ok {
		t.Fatal("stale CAS publish succeeded")
	}
}

// TestSchemaAssignRoundTrip checks that a split partitioner's slot
// assignment survives publish/load.
func TestSchemaAssignRoundTrip(t *testing.T) {
	p := NewRangePartitioner([]string{"g", "p"})
	split, err := p.Split("j", 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Schema{Epoch: 2, Kind: "range", Partitions: 4, Bounds: split.Bounds(), Assign: split.Assignments()}
	rebuilt, err := s.PartitionerFor()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "g", "i", "j", "o", "p", "z"} {
		if rebuilt.PartitionOf(k) != split.PartitionOf(k) {
			t.Fatalf("rebuilt partitioner disagrees for %q: %d vs %d",
				k, rebuilt.PartitionOf(k), split.PartitionOf(k))
		}
	}
	// The moved range went to the new index; old slots kept theirs.
	if split.PartitionOf("i") != 1 || split.PartitionOf("j") != 3 || split.PartitionOf("z") != 2 {
		t.Fatalf("split assignment wrong: %v / %v", split.Bounds(), split.Assignments())
	}
	// Duplicate assignments are legal (a merge survivor owns several
	// slots), but malformed ones are still rejected.
	dup := Schema{Kind: "range", Partitions: 3, Bounds: split.Bounds(), Assign: []int{0, 0, 1, 2}}
	if _, err := dup.PartitionerFor(); err != nil {
		t.Fatalf("merge-shaped assignment rejected: %v", err)
	}
	bad := Schema{Kind: "range", Partitions: 4, Bounds: split.Bounds(), Assign: []int{0, -1, 1, 2}}
	if _, err := bad.PartitionerFor(); err == nil {
		t.Fatal("negative assignment accepted")
	}
	short := Schema{Kind: "range", Partitions: 4, Bounds: split.Bounds(), Assign: []int{0, 1}}
	if _, err := short.PartitionerFor(); err == nil {
		t.Fatal("short assignment accepted")
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	reg := registry.New()
	if _, err := LoadSchema(reg); err == nil {
		t.Fatal("missing schema should fail")
	}
	reg.Set("/mrp-store/schema", []byte("not json"))
	if _, err := LoadSchema(reg); err == nil {
		t.Fatal("bad schema should fail")
	}
	bad := Schema{Kind: "range", Partitions: 3, Bounds: []string{"x"}}
	if _, err := bad.PartitionerFor(); err == nil {
		t.Fatal("inconsistent bounds should fail")
	}
	unknown := Schema{Kind: "consistent-hash"}
	if _, err := unknown.PartitionerFor(); err == nil {
		t.Fatal("unknown kind should fail")
	}
}
