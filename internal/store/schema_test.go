package store

import (
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/registry"
	"mrp/internal/storage"
)

func TestSchemaPublishLoadHash(t *testing.T) {
	d := testDeploy(t, true, 3)
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "hash" || s.Partitions != 3 || !s.GlobalRing {
		t.Fatalf("schema = %+v", s)
	}
	if len(s.Replicas) != 3 || len(s.Replicas[0]) != 3 {
		t.Fatalf("replicas = %+v", s.Replicas)
	}
	p, err := s.PartitionerFor()
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt partitioner must agree with the deployment's.
	for _, k := range []string{"a", "user42", "zzz"} {
		if p.PartitionOf(k) != d.Partitioner().PartitionOf(k) {
			t.Fatalf("partitioner mismatch for %q", k)
		}
	}
}

func TestSchemaPublishLoadRange(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	part := NewRangePartitioner([]string{"m"})
	d, err := Deploy(DeployConfig{
		Net: net, Partitions: 2, Replicas: 3,
		Partitioner: part, StorageMode: storage.InMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop(); net.Close() })
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != "range" || len(s.Bounds) != 1 || s.Bounds[0] != "m" {
		t.Fatalf("schema = %+v", s)
	}
	p, _ := s.PartitionerFor()
	if p.PartitionOf("a") != 0 || p.PartitionOf("z") != 1 {
		t.Fatal("range partitioner mismatch")
	}
}

func TestLoadSchemaErrors(t *testing.T) {
	reg := registry.New()
	if _, err := LoadSchema(reg); err == nil {
		t.Fatal("missing schema should fail")
	}
	reg.Set("/mrp-store/schema", []byte("not json"))
	if _, err := LoadSchema(reg); err == nil {
		t.Fatal("bad schema should fail")
	}
	bad := Schema{Kind: "range", Partitions: 3, Bounds: []string{"x"}}
	if _, err := bad.PartitionerFor(); err == nil {
		t.Fatal("inconsistent bounds should fail")
	}
	unknown := Schema{Kind: "consistent-hash"}
	if _, err := unknown.PartitionerFor(); err == nil {
		t.Fatal("unknown kind should fail")
	}
}
