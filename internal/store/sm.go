package store

import (
	"encoding/binary"

	"mrp/internal/smr"
)

// SM is the state machine of one MRP-Store partition replica: an ordered
// in-memory map plus the partition descriptor. Multi-partition commands
// (scans multicast through the global ring) are executed against the local
// shard only, and the partition tag in the result lets clients gather one
// reply per partition.
//
// The SM also carries the replica's view of the partitioning schema: the
// current epoch, the partitioner, and — while an online split is in flight
// — the frozen key range being moved. Commands addressing keys the
// partition does not own under the current mapping are answered with
// statusWrongEpoch (the typed redirect clients react to by refreshing the
// published schema and retrying). All of this state changes only through
// ordered commands (opPrepareSplit/opActivatePart/opCommitSplit), so every
// replica of a partition transitions at the same logical point.
type SM struct {
	partition   int
	partitioner Partitioner
	data        *SortedMap

	// epoch is the schema epoch this replica has committed.
	epoch uint64
	// pendingEpoch is the epoch of a prepared-but-uncommitted split.
	pendingEpoch uint64
	// warming marks a freshly added partition that has not yet received
	// its full key range; it rejects client commands until activated.
	warming bool
	// migrating marks the split source between prepare and commit: the
	// moved range [movedFrom, ...) is frozen (reads and writes redirected)
	// but still physically present so scans stay complete.
	migrating bool
	movedFrom string
	movedPart int
}

var _ smr.StateMachine = (*SM)(nil)

// NewSM creates the state machine for one partition at epoch 1.
func NewSM(partition int, p Partitioner) *SM {
	return NewSMAt(partition, p, 1, false)
}

// NewSMAt creates a partition state machine at a given schema epoch.
// warming marks a partition added by an online split that must not serve
// client commands until the moved range has been migrated and an
// opActivatePart command is delivered on its ring.
func NewSMAt(partition int, p Partitioner, epoch uint64, warming bool) *SM {
	return &SM{partition: partition, partitioner: p, data: NewSortedMap(), epoch: epoch, warming: warming}
}

// Data exposes the underlying sorted map (read-only use: preloading and
// test assertions).
func (s *SM) Data() *SortedMap { return s.data }

// Epoch returns the committed schema epoch (test/inspection helper).
func (s *SM) Epoch() uint64 { return s.epoch }

// Warming reports whether the partition still awaits activation.
func (s *SM) Warming() bool { return s.warming }

// Execute implements smr.StateMachine.
func (s *SM) Execute(raw []byte) []byte {
	o, err := decodeOp(raw)
	if err != nil {
		return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}.encode()
	}
	return s.apply(o).encode()
}

// wrongEpoch builds the typed redirect reply carrying the replica's
// current epoch.
func (s *SM) wrongEpoch() result {
	return result{status: statusWrongEpoch, partition: uint16(s.partition), epoch: s.epoch}
}

// owns reports whether this partition serves key under the current
// mapping. During a migration the moved range is already assigned to the
// new partition, so frozen keys fail this check — which is exactly the
// redirect the protocol wants.
func (s *SM) owns(key string) bool {
	return s.partitioner.PartitionOf(key) == s.partition
}

func (s *SM) apply(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	switch o.kind {
	case opRead, opUpdate, opInsert, opDelete:
		if s.warming || !s.owns(o.key) {
			return s.wrongEpoch()
		}
		return s.applyKeyed(o)
	case opScan:
		if s.warming || (o.epoch != 0 && o.epoch < s.epoch) {
			// A scan routed under a superseded schema may be missing whole
			// partitions from its fan-out; make the client re-plan it.
			return s.wrongEpoch()
		}
		res.entries = s.scanOwned(o.key, o.to, o.limit)
	case opBatch:
		if s.warming {
			return s.wrongEpoch()
		}
		for _, sub := range o.batch {
			if !s.owns(sub.key) {
				// Reject the whole batch before applying anything: the
				// client regroups it under the refreshed schema.
				return s.wrongEpoch()
			}
		}
		for _, sub := range o.batch {
			if r := s.applyKeyed(sub); r.status == statusOK {
				res.count++
			}
		}
	case opMigrate:
		if !s.warming {
			return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}
		}
		for _, sub := range o.batch {
			s.data.Put(sub.key, sub.value)
			res.count++
		}
	case opPrepareSplit:
		return s.applyPrepareSplit(o)
	case opActivatePart:
		switch {
		case s.partition == int(o.part) && s.warming:
			s.warming = false
			if o.epoch > s.epoch {
				s.epoch = o.epoch
			}
			res.epoch = s.epoch
		case s.partition == int(o.part) && s.epoch >= o.epoch:
			// Already activated at (or past) this epoch: idempotent.
		default:
			// Activating nothing must be loud — a silent OK here would let
			// the coordinator proceed while the partition stays warming.
			res.status = statusError
		}
	case opCommitSplit:
		if o.epoch > s.epoch {
			s.epoch = o.epoch
			if s.migrating && s.partition == int(o.part) {
				s.dropMovedRange()
			}
			s.migrating = false
			s.movedFrom = ""
			s.movedPart = 0
		}
		res.epoch = s.epoch
	default:
		res.status = statusError
	}
	return res
}

// applyKeyed executes one ownership-checked single-key operation.
func (s *SM) applyKeyed(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	switch o.kind {
	case opRead:
		v, ok := s.data.Get(o.key)
		if !ok {
			res.status = statusNotFound
			return res
		}
		res.value = v
		if res.value == nil {
			res.value = []byte{}
		}
	case opUpdate:
		// update(k, v): update entry k with value v, if existent (Table 1).
		if _, ok := s.data.Get(o.key); !ok {
			res.status = statusNotFound
			return res
		}
		s.data.Put(o.key, o.value)
	case opInsert:
		s.data.Put(o.key, o.value)
	case opDelete:
		if !s.data.Delete(o.key) {
			res.status = statusNotFound
		}
	default:
		res.status = statusError
	}
	return res
}

// scanOwned scans the shard, filtered to keys this partition currently
// owns — plus, while migrating, the frozen moved range (still physically
// present here and not yet served anywhere else; the client keeps the
// owner's copy when both sides report a key).
func (s *SM) scanOwned(from, to string, limit int) []Entry {
	if !s.migrating {
		// Outside a migration the shard holds only owned keys (inserts are
		// ownership-checked and commits drop moved ranges), so the limit
		// pushes down to the sorted map and the filter is a cheap
		// invariant guard.
		raw := s.data.Scan(from, to, limit)
		out := raw[:0]
		for _, e := range raw {
			if s.partitioner.PartitionOf(e.Key) == s.partition {
				out = append(out, e)
			}
		}
		return out
	}
	// Migration window: the frozen moved range is interleaved with owned
	// keys, so the limit only applies after filtering.
	raw := s.data.Scan(from, to, 0)
	out := make([]Entry, 0, len(raw))
	for _, e := range raw {
		p := s.partitioner.PartitionOf(e.Key)
		if p == s.partition || p == s.movedPart {
			out = append(out, e)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// applyPrepareSplit adopts the split partitioning and, on the source
// partition, freezes the moved range and returns its entries so the
// coordinator can stream them to the new partition's replicas.
func (s *SM) applyPrepareSplit(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	if o.epoch <= s.epoch || o.epoch <= s.pendingEpoch {
		return res // duplicate delivery of an already-prepared split
	}
	rp, ok := s.partitioner.(*RangePartitioner)
	if !ok {
		res.status = statusError
		return res
	}
	np, err := rp.Split(o.key, int(o.newPart))
	if err != nil {
		res.status = statusError
		return res
	}
	s.partitioner = np
	s.pendingEpoch = o.epoch
	if s.partition == int(o.part) {
		s.migrating = true
		s.movedFrom = o.key
		s.movedPart = int(o.newPart)
		res.entries = s.movedEntries()
	}
	return res
}

// movedEntries returns the frozen entries of the moved range.
func (s *SM) movedEntries() []Entry {
	var out []Entry
	for _, e := range s.data.Scan(s.movedFrom, "", 0) {
		if s.partitioner.PartitionOf(e.Key) == s.movedPart {
			out = append(out, e)
		}
	}
	return out
}

// dropMovedRange deletes the frozen entries after ownership has flipped.
func (s *SM) dropMovedRange() {
	for _, e := range s.movedEntries() {
		s.data.Delete(e.Key)
	}
}

// Snapshot format version tag; bumped when schema state joined the data.
const snapshotV2 = 2

// Snapshot implements smr.StateMachine: the schema state (epoch, warming
// and migration flags, partitioner) followed by the full shard as
// length-prefixed key/value pairs. All fields evolve deterministically, so
// snapshots of converged replicas remain byte-identical.
func (s *SM) Snapshot() []byte {
	var b []byte
	b = append(b, snapshotV2)
	b = binary.BigEndian.AppendUint64(b, s.epoch)
	b = binary.BigEndian.AppendUint64(b, s.pendingEpoch)
	var flags byte
	if s.warming {
		flags |= 1
	}
	if s.migrating {
		flags |= 2
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint16(b, uint16(s.movedPart))
	b = appendString(b, s.movedFrom)
	switch p := s.partitioner.(type) {
	case *HashPartitioner:
		b = append(b, 0)
		b = binary.BigEndian.AppendUint32(b, uint32(p.n))
	case *RangePartitioner:
		b = append(b, 1)
		b = binary.BigEndian.AppendUint32(b, uint32(len(p.assign)))
		for _, bound := range p.bounds {
			b = appendString(b, bound)
		}
		for _, a := range p.assign {
			b = binary.BigEndian.AppendUint32(b, uint32(a))
		}
	default:
		b = append(b, 0xFF)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(s.data.Len()))
	s.data.Ascend(func(e Entry) bool {
		b = appendString(b, e.Key)
		b = appendBytes(b, e.Value)
		return true
	})
	return b
}

// Restore implements smr.StateMachine.
func (s *SM) Restore(b []byte) {
	s.data = NewSortedMap()
	if len(b) < 1 || b[0] != snapshotV2 {
		return
	}
	b = b[1:]
	if len(b) < 19 {
		return
	}
	s.epoch = binary.BigEndian.Uint64(b)
	s.pendingEpoch = binary.BigEndian.Uint64(b[8:])
	flags := b[16]
	s.warming = flags&1 != 0
	s.migrating = flags&2 != 0
	s.movedPart = int(binary.BigEndian.Uint16(b[17:]))
	b = b[19:]
	var err error
	s.movedFrom, b, err = takeString(b)
	if err != nil || len(b) < 1 {
		return
	}
	pkind := b[0]
	b = b[1:]
	switch pkind {
	case 0:
		if len(b) < 4 {
			return
		}
		s.partitioner = NewHashPartitioner(int(binary.BigEndian.Uint32(b)))
		b = b[4:]
	case 1:
		if len(b) < 4 {
			return
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		bounds := make([]string, 0, n-1)
		for i := 0; i < n-1; i++ {
			var bound string
			bound, b, err = takeString(b)
			if err != nil {
				return
			}
			bounds = append(bounds, bound)
		}
		if len(b) < 4*n {
			return
		}
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			assign[i] = int(binary.BigEndian.Uint32(b[4*i:]))
		}
		b = b[4*n:]
		rp, perr := newRangePartitionerAssigned(bounds, assign)
		if perr != nil {
			return
		}
		s.partitioner = rp
	default:
		return
	}
	if len(b) < 4 {
		return
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	for i := 0; i < n; i++ {
		k, rest, err := takeString(b)
		if err != nil {
			return
		}
		v, rest2, err := takeBytes(rest)
		if err != nil {
			return
		}
		s.data.Put(k, append([]byte(nil), v...))
		b = rest2
	}
}
