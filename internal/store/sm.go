package store

import (
	"encoding/binary"

	"mrp/internal/smr"
)

// SM is the state machine of one MRP-Store partition replica: an ordered
// in-memory map plus the partition descriptor. Multi-partition commands
// (scans multicast through the global ring) are executed against the local
// shard only, and the partition tag in the result lets clients gather one
// reply per partition.
type SM struct {
	partition   int
	partitioner Partitioner
	data        *SortedMap
}

var _ smr.StateMachine = (*SM)(nil)

// NewSM creates the state machine for one partition.
func NewSM(partition int, p Partitioner) *SM {
	return &SM{partition: partition, partitioner: p, data: NewSortedMap()}
}

// Data exposes the underlying sorted map (read-only use: preloading and
// test assertions).
func (s *SM) Data() *SortedMap { return s.data }

// Execute implements smr.StateMachine.
func (s *SM) Execute(raw []byte) []byte {
	o, err := decodeOp(raw)
	if err != nil {
		return result{status: statusError, partition: uint16(s.partition)}.encode()
	}
	return s.apply(o).encode()
}

func (s *SM) apply(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition)}
	switch o.kind {
	case opRead:
		v, ok := s.data.Get(o.key)
		if !ok {
			res.status = statusNotFound
			return res
		}
		res.value = v
		if res.value == nil {
			res.value = []byte{}
		}
	case opUpdate:
		// update(k, v): update entry k with value v, if existent (Table 1).
		if _, ok := s.data.Get(o.key); !ok {
			res.status = statusNotFound
			return res
		}
		s.data.Put(o.key, o.value)
	case opInsert:
		s.data.Put(o.key, o.value)
	case opDelete:
		if !s.data.Delete(o.key) {
			res.status = statusNotFound
		}
	case opScan:
		res.entries = s.data.Scan(o.key, o.to, o.limit)
	case opBatch:
		for _, sub := range o.batch {
			r := s.apply(sub)
			if r.status == statusOK {
				res.count++
			}
		}
	default:
		res.status = statusError
	}
	return res
}

// Snapshot implements smr.StateMachine: the full shard as length-prefixed
// key/value pairs.
func (s *SM) Snapshot() []byte {
	var b []byte
	b = binary.BigEndian.AppendUint32(b, uint32(s.data.Len()))
	s.data.Ascend(func(e Entry) bool {
		b = appendString(b, e.Key)
		b = appendBytes(b, e.Value)
		return true
	})
	return b
}

// Restore implements smr.StateMachine.
func (s *SM) Restore(b []byte) {
	s.data = NewSortedMap()
	if len(b) < 4 {
		return
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	for i := 0; i < n; i++ {
		k, rest, err := takeString(b)
		if err != nil {
			return
		}
		v, rest2, err := takeBytes(rest)
		if err != nil {
			return
		}
		s.data.Put(k, append([]byte(nil), v...))
		b = rest2
	}
}
