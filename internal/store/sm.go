package store

import (
	"encoding/binary"
	"sync/atomic"

	"mrp/internal/smr"
)

// SM is the state machine of one MRP-Store partition replica: an ordered
// in-memory map plus the partition descriptor. Multi-partition commands
// (scans multicast through the global ring) are executed against the local
// shard only, and the partition tag in the result lets clients gather one
// reply per partition.
//
// The SM also carries the replica's view of the partitioning schema: the
// current epoch, the partitioner, and — while an online reconfiguration is
// in flight — the pending state between the ordered prepare and its
// ordered commit or abort. Commands addressing keys the partition does not
// own (or cannot currently serve) under the current mapping are answered
// with statusWrongEpoch (the typed redirect clients react to by refreshing
// the published schema and retrying). All of this state changes only
// through ordered commands (opPrepareReconfig / opActivatePart /
// opCommitReconfig / opAbortReconfig), so every replica of a partition
// transitions at the same logical point — which is also what makes every
// phase crash-recoverable: replaying the ring reproduces the exact same
// schema state, including a prepare that was later aborted.
type SM struct {
	partition   int
	partitioner Partitioner
	data        *SortedMap

	// epoch is the schema epoch this replica has committed.
	epoch uint64
	// warming marks a freshly added partition that has not yet received
	// its full key range; it rejects client commands until activated.
	warming bool

	// Pending reconfiguration state, set by opPrepareReconfig and cleared
	// by opCommitReconfig / opAbortReconfig.
	//
	// pendingEpoch is the epoch of the prepared-but-uncommitted change and
	// pendingKind its reconfig kind. prev is the mapping to restore on
	// abort (a split installs the post-split mapping already at prepare).
	pendingEpoch uint64
	pendingKind  byte
	prev         Partitioner
	// migrating marks the split source between prepare and commit: the
	// moved range [movedFrom, ...) is frozen (reads and writes redirected)
	// but still physically present so scans stay complete.
	migrating bool
	movedFrom string
	movedPart int
	// frozen marks the merge donor from its prepare until its ring is
	// torn down: its whole range is moving, so every command — keyed ops
	// and scans alike — is redirected. (Scans of the frozen data would be
	// exact until the survivor's commit, but the donor never learns of
	// that commit — it rides the survivor's ring — so serving them would
	// risk a stale read the moment the survivor starts accepting writes.)
	frozen bool
	// receiving marks the merge survivor between prepare and commit: it
	// accepts epoch-tagged migrate chunks for the range it will own.
	receiving bool

	// statOps counts client data operations this replica executed (reads,
	// writes, scans, and batch sub-ops — not admin or migration commands).
	// It is atomic because the auto-sharding controller samples it from
	// outside the execution goroutine; it is process-local (not part of
	// the snapshot), so a recovered replica restarts it at zero — the
	// controller consumes rate deltas, which self-heal after one tick.
	statOps atomic.Uint64

	// votes is this replica's own vote history for conditional
	// cross-partition transactions (see txn.go). Own votes are a pure
	// function of the ordered command stream, so the history is part of
	// the snapshot; received remote votes are transient and are not.
	votes voteTable
	// txnEx exchanges CAS votes with the replicas of other participant
	// partitions; nil outside a deployment (conditional multi-partition
	// transactions then fail with statusError, everything else works).
	txnEx TxnExchanger
}

var (
	_ smr.StateMachine = (*SM)(nil)
	_ smr.LocalReader  = (*SM)(nil)
)

// NewSM creates the state machine for one partition at epoch 1.
func NewSM(partition int, p Partitioner) *SM {
	return NewSMAt(partition, p, 1, false)
}

// NewSMAt creates a partition state machine at a given schema epoch.
// warming marks a partition added by an online split that must not serve
// client commands until the moved range has been migrated and an
// opActivatePart command is delivered on its ring.
func NewSMAt(partition int, p Partitioner, epoch uint64, warming bool) *SM {
	return &SM{partition: partition, partitioner: p, data: NewSortedMap(), epoch: epoch, warming: warming}
}

// Data exposes the underlying sorted map (read-only use: preloading and
// test assertions).
func (s *SM) Data() *SortedMap { return s.data }

// Epoch returns the committed schema epoch (test/inspection helper).
func (s *SM) Epoch() uint64 { return s.epoch }

// Warming reports whether the partition still awaits activation.
func (s *SM) Warming() bool { return s.warming }

// Pending reports the epoch of a prepared-but-unresolved reconfiguration
// (0 when none is in flight; test/inspection helper).
func (s *SM) Pending() uint64 { return s.pendingEpoch }

// Execute implements smr.StateMachine. It runs once per ordered command
// on the executor goroutine: a hot-path scope root.
//
//mrp:deterministic
//mrp:hotpath
func (s *SM) Execute(raw []byte) []byte {
	o, err := decodeOp(raw)
	if err != nil {
		return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}.encode()
	}
	return s.apply(o).encode()
}

// ExecuteLocal implements smr.LocalReader: a lease-holding replica serves
// reads and scans against its applied state without ordering them. Only
// side-effect-free op kinds qualify — everything else declines so the
// client proposes through the ring as usual. The op runs through the same
// apply gates as an ordered execution (warming, frozen, ownership, scan
// epoch), so a local read of a key this partition cannot currently serve
// returns the same typed statusWrongEpoch redirect an ordered read would,
// and the client's refresh-and-retry machinery works unchanged. Runs on
// the replica's execution goroutine between deliveries (see
// smr.LocalReader), never concurrently with Execute.
func (s *SM) ExecuteLocal(raw []byte) ([]byte, bool) {
	o, err := decodeOp(raw)
	if err != nil {
		return nil, false
	}
	switch o.kind {
	case opRead, opScan:
		return s.apply(o).encode(), true
	}
	return nil, false
}

// wrongEpoch builds the typed redirect reply carrying the replica's
// current epoch.
func (s *SM) wrongEpoch() result {
	return result{status: statusWrongEpoch, partition: uint16(s.partition), epoch: s.epoch}
}

// owns reports whether this partition serves key under the current
// mapping. During a split migration the moved range is already assigned to
// the new partition, so frozen keys fail this check — which is exactly the
// redirect the protocol wants.
func (s *SM) owns(key string) bool {
	return s.partitioner.PartitionOf(key) == s.partition
}

func (s *SM) apply(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	switch o.kind {
	case opRead, opUpdate, opInsert, opDelete:
		if s.warming || s.frozen || !s.owns(o.key) {
			return s.wrongEpoch()
		}
		s.statOps.Add(1)
		return s.applyKeyed(o)
	case opStats:
		return s.applyStats(o)
	case opScan:
		if s.warming || s.frozen || (o.epoch != 0 && o.epoch < s.epoch) {
			// A scan routed under a superseded schema may be missing whole
			// partitions from its fan-out; make the client re-plan it.
			return s.wrongEpoch()
		}
		if s.receiving && o.epoch != 0 && o.epoch >= s.pendingEpoch {
			// The client already routes under the post-merge schema but the
			// survivor has not committed the merged mapping yet: serving now
			// would silently omit the donor's range. Redirect until commit.
			return s.wrongEpoch()
		}
		res.entries = s.scanOwned(o.key, o.to, o.limit)
		s.statOps.Add(1)
	case opBatch:
		if s.warming || s.frozen {
			return s.wrongEpoch()
		}
		for _, sub := range o.batch {
			if !s.owns(sub.key) {
				// Reject the whole batch before applying anything: the
				// client regroups it under the refreshed schema.
				return s.wrongEpoch()
			}
		}
		s.statOps.Add(uint64(len(o.batch)))
		for _, sub := range o.batch {
			if r := s.applyKeyed(sub); r.status == statusOK {
				res.count++
			}
		}
	case opMigrate:
		accepting := s.warming || (s.receiving && o.epoch == s.pendingEpoch)
		if !accepting || int(o.part) != s.partition {
			return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}
		}
		for _, sub := range o.batch {
			s.data.Put(sub.key, sub.value)
			res.count++
		}
	case opPrepareReconfig:
		return s.applyPrepare(o)
	case opActivatePart:
		switch {
		case s.partition == int(o.part) && s.warming:
			s.warming = false
			if o.epoch > s.epoch {
				s.epoch = o.epoch
			}
			res.epoch = s.epoch
		case s.partition == int(o.part) && s.epoch >= o.epoch:
			// Already activated at (or past) this epoch: idempotent.
		default:
			// Activating nothing must be loud — a silent OK here would let
			// the coordinator proceed while the partition stays warming.
			res.status = statusError
		}
	case opCommitReconfig:
		return s.applyCommit(o)
	case opAbortReconfig:
		return s.applyAbort(o)
	case opTxn:
		return s.applyTxn(o)
	default:
		res.status = statusError
	}
	return res
}

// applyKeyed executes one ownership-checked single-key operation.
func (s *SM) applyKeyed(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	switch o.kind {
	case opRead:
		v, ok := s.data.Get(o.key)
		if !ok {
			res.status = statusNotFound
			return res
		}
		res.value = v
		if res.value == nil {
			res.value = []byte{}
		}
	case opUpdate:
		// update(k, v): update entry k with value v, if existent (Table 1).
		if _, ok := s.data.Get(o.key); !ok {
			res.status = statusNotFound
			return res
		}
		s.data.Put(o.key, o.value)
	case opInsert:
		s.data.Put(o.key, o.value)
	case opDelete:
		if !s.data.Delete(o.key) {
			res.status = statusNotFound
		}
	default:
		res.status = statusError
	}
	return res
}

// scanOwned scans the shard, filtered to keys this partition currently
// owns — plus, while a split is migrating, the frozen moved range (still
// physically present here and not yet served anywhere else; the client
// keeps the owner's copy when both sides report a key). A receiving merge
// survivor filters half-transferred donor entries out the same way: they
// are not owned until the commit.
func (s *SM) scanOwned(from, to string, limit int) []Entry {
	if !s.migrating && !s.receiving {
		// The common case: the shard holds only owned keys (inserts are
		// ownership-checked and commits drop moved ranges), so the limit
		// pushes down to the sorted map and the filter is a cheap
		// invariant guard.
		raw := s.data.Scan(from, to, limit)
		out := raw[:0]
		for _, e := range raw {
			if s.partitioner.PartitionOf(e.Key) == s.partition {
				out = append(out, e)
			}
		}
		return out
	}
	// Reconfiguration window: a split donor's frozen moved range, or a
	// merge survivor's half-received chunks, interleave with owned keys —
	// the limit only applies after filtering.
	raw := s.data.Scan(from, to, 0)
	out := make([]Entry, 0, len(raw)) //mrp:alloc — reconfiguration-window scans only; the steady-state branch above filters in place
	for _, e := range raw {
		p := s.partitioner.PartitionOf(e.Key)
		if p == s.partition || (s.migrating && p == s.movedPart) {
			out = append(out, e)
			if limit > 0 && len(out) >= limit {
				break
			}
		}
	}
	return out
}

// resolveStraggler reconciles pending state left by an earlier epoch
// before a newer ordered admin command applies. A reconfiguration's
// commit and the next reconfiguration's prepare can ride different rings,
// and the deterministic merge may deliver them in either order — the same
// order on every replica, but possibly prepare-first. The epoch arithmetic
// disambiguates: the coordinator reuses an aborted epoch for its next plan
// and only advances past an epoch that committed, so an admin command for
// a strictly newer epoch proves the pending epoch committed. Apply the
// lagging commit's effects here; its eventual delivery becomes a no-op.
func (s *SM) resolveStraggler(epoch uint64) {
	if s.pendingEpoch == 0 || s.pendingEpoch >= epoch {
		return
	}
	switch s.pendingKind {
	case reconfigSplit:
		if s.pendingEpoch > s.epoch {
			s.epoch = s.pendingEpoch
		}
		if s.migrating {
			s.dropMovedRange()
		}
	case reconfigMergeDest:
		if rp, ok := s.partitioner.(*RangePartitioner); ok {
			if np, err := rp.Merge(s.movedPart, s.partition); err == nil {
				s.partitioner = np
			}
		}
		if s.pendingEpoch > s.epoch {
			s.epoch = s.pendingEpoch
		}
	case reconfigMergeDonor:
		// A committed merge leaves the donor frozen until its teardown;
		// nothing newer can legitimately target it.
		return
	}
	s.clearPending()
}

// resolveAbort applies the effects of aborting the pending
// reconfiguration: restore the pre-prepare mapping, unfreeze, drop
// half-transferred entries.
func (s *SM) resolveAbort() {
	switch s.pendingKind {
	case reconfigSplit:
		if s.prev != nil {
			s.partitioner = s.prev
		}
	case reconfigMergeDonor:
		// Unfreezing is all it takes: the mapping never changed and the
		// donor's data never left.
	case reconfigMergeDest:
		s.dropUnowned()
	}
	s.clearPending()
}

// applyPrepare dispatches an ordered reconfiguration prepare. Prepares
// happen once per reconfiguration, not per command: cold path.
//
//mrp:coldpath
func (s *SM) applyPrepare(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	s.resolveStraggler(o.epoch)
	if o.epoch <= s.epoch {
		return res // duplicate delivery of an already-committed change
	}
	if s.pendingEpoch == o.epoch {
		// A retry of this epoch: the previous attempt aborted (a committed
		// epoch would have advanced s.epoch past the guard above) and its
		// ordered abort is still in flight on another ring. Resolve it
		// before arming the retry. (Literal duplicate deliveries cannot
		// reach the state machine: the SMR layer deduplicates per-client
		// commands deterministically.)
		s.resolveAbort()
	}
	switch o.rkind {
	case reconfigSplit:
		return s.applyPrepareSplit(o)
	case reconfigMergeDonor:
		s.pendingEpoch = o.epoch
		s.pendingKind = o.rkind
		if s.partition == int(o.part) {
			s.frozen = true
			s.movedPart = int(o.newPart)
			res.entries = s.ownedEntries()
		}
	case reconfigMergeDest:
		if s.warming || s.partition != int(o.newPart) {
			res.status = statusError
			return res
		}
		s.pendingEpoch = o.epoch
		s.pendingKind = o.rkind
		s.movedPart = int(o.part) // the donor, for a lagging-commit resolve
		s.receiving = true
	default:
		res.status = statusError
	}
	return res
}

// applyPrepareSplit adopts the split partitioning and, on the source
// partition, freezes the moved range and returns its entries so the
// coordinator can stream them to the new partition's replicas. The
// coordinator sends the authoritative post-split mapping with the
// command; deriving it locally would fail on replicas whose own mapping
// is stale (reconfigurations their rings never carried — e.g. a merge
// ordered on the survivor's ring alone — leave their view behind).
func (s *SM) applyPrepareSplit(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	np := o.pmap
	if np == nil {
		// Mapping-free prepare (tests): derive the split locally.
		rp, ok := s.partitioner.(*RangePartitioner)
		if !ok {
			res.status = statusError
			return res
		}
		var err error
		np, err = rp.Split(o.key, int(o.newPart))
		if err != nil {
			res.status = statusError
			return res
		}
	}
	s.prev = s.partitioner
	s.partitioner = np
	s.pendingEpoch = o.epoch
	s.pendingKind = reconfigSplit
	if s.partition == int(o.part) {
		s.migrating = true
		s.movedFrom = o.key
		s.movedPart = int(o.newPart)
		res.entries = s.movedEntries()
	}
	return res
}

// applyCommit finishes a prepared reconfiguration: the split source drops
// the moved range, the merge survivor adopts the merged mapping, and the
// replicas on the ring adopt the new epoch. Once per reconfiguration:
// cold path.
//
//mrp:coldpath
func (s *SM) applyCommit(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	s.resolveStraggler(o.epoch)
	if o.epoch <= s.epoch {
		return res // duplicate delivery (or an already-resolved straggler)
	}
	switch o.rkind {
	case reconfigSplit:
		s.epoch = o.epoch
		if s.migrating && s.partition == int(o.part) {
			s.dropMovedRange()
		}
		s.clearPending()
	case reconfigMergeDest:
		np := o.pmap
		if np == nil {
			// Mapping-free commit (tests): derive the merge locally.
			rp, ok := s.partitioner.(*RangePartitioner)
			if !ok {
				res.status = statusError
				return res
			}
			var err error
			np, err = rp.Merge(int(o.part), int(o.newPart))
			if err != nil {
				res.status = statusError
				return res
			}
		}
		s.partitioner = np
		s.epoch = o.epoch
		s.clearPending()
	default:
		res.status = statusError
		return res
	}
	res.epoch = s.epoch
	return res
}

// applyAbort rolls a prepared reconfiguration back: the pre-prepare
// mapping is restored, frozen ranges unfreeze, and half-transferred
// entries are dropped. A replica with no matching pending state treats the
// abort as an idempotent duplicate. Once per failed reconfiguration:
// cold path.
//
//mrp:coldpath
func (s *SM) applyAbort(o op) result {
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	s.resolveStraggler(o.epoch)
	if s.pendingEpoch == 0 || o.epoch != s.pendingEpoch {
		return res
	}
	s.resolveAbort()
	return res
}

// clearPending resets the prepared-reconfiguration state (the committed
// mapping and epoch are managed by the caller).
func (s *SM) clearPending() {
	s.pendingEpoch = 0
	s.pendingKind = 0
	s.prev = nil
	s.migrating = false
	s.movedFrom = ""
	s.movedPart = 0
	s.frozen = false
	s.receiving = false
}

// movedEntries returns the frozen entries of the moved range.
func (s *SM) movedEntries() []Entry {
	var out []Entry
	for _, e := range s.data.Scan(s.movedFrom, "", 0) {
		if s.partitioner.PartitionOf(e.Key) == s.movedPart {
			out = append(out, e)
		}
	}
	return out
}

// ownedEntries returns every entry the partition owns (the merge donor's
// transfer set: its whole range).
func (s *SM) ownedEntries() []Entry {
	var out []Entry
	for _, e := range s.data.Scan("", "", 0) {
		if s.owns(e.Key) {
			out = append(out, e)
		}
	}
	return out
}

// dropMovedRange deletes the frozen entries after ownership has flipped.
func (s *SM) dropMovedRange() {
	for _, e := range s.movedEntries() {
		s.data.Delete(e.Key)
	}
}

// dropUnowned deletes every entry the partition does not own under the
// current mapping — on an aborting merge survivor that is exactly the set
// of half-transferred donor chunks (everything else it holds is
// ownership-checked on the way in).
func (s *SM) dropUnowned() {
	var doomed []string
	s.data.Ascend(func(e Entry) bool {
		if !s.owns(e.Key) {
			doomed = append(doomed, e.Key)
		}
		return true
	})
	for _, k := range doomed {
		s.data.Delete(k)
	}
}

// Snapshot format version tags: v3 added the generalized reconfiguration
// state (pending kind, abort-restore mapping, merge flags); v4 appends the
// replica's own transaction-vote history (txn.go) after the entries.
const (
	snapshotV3 = 3
	snapshotV4 = 4
)

// appendPartitioner encodes a partitioner for snapshots.
func appendPartitioner(b []byte, p Partitioner) []byte {
	switch p := p.(type) {
	case *HashPartitioner:
		b = append(b, 0)
		b = binary.BigEndian.AppendUint32(b, uint32(p.n))
	case *RangePartitioner:
		b = append(b, 1)
		b = binary.BigEndian.AppendUint32(b, uint32(len(p.assign)))
		for _, bound := range p.bounds {
			b = appendString(b, bound)
		}
		for _, a := range p.assign {
			b = binary.BigEndian.AppendUint32(b, uint32(a))
		}
	default:
		b = append(b, 0xFF)
	}
	return b
}

// takePartitioner decodes a snapshot-encoded partitioner. Snapshots are
// decoded only on restore and reconfiguration prepare, never per command:
// cold path.
//
//mrp:coldpath
func takePartitioner(b []byte) (Partitioner, []byte, bool) {
	if len(b) < 1 {
		return nil, nil, false
	}
	pkind := b[0]
	b = b[1:]
	switch pkind {
	case 0:
		if len(b) < 4 {
			return nil, nil, false
		}
		return NewHashPartitioner(int(binary.BigEndian.Uint32(b))), b[4:], true
	case 1:
		if len(b) < 4 {
			return nil, nil, false
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		// The wire-sourced count must be validated before it sizes any
		// allocation: n == 0 would panic on the negative bounds capacity,
		// and a huge n would pre-allocate gigabytes from one corrupt
		// checkpoint. The minimum encoding of n partitions is n-1 bound
		// strings (2-byte length prefix each) plus n 4-byte assignments.
		if n < 1 || len(b) < 6*n-2 {
			return nil, nil, false
		}
		bounds := make([]string, 0, n-1)
		for i := 0; i < n-1; i++ {
			var bound string
			var err error
			bound, b, err = takeString(b)
			if err != nil {
				return nil, nil, false
			}
			bounds = append(bounds, bound)
		}
		if len(b) < 4*n {
			return nil, nil, false
		}
		assign := make([]int, n)
		for i := 0; i < n; i++ {
			assign[i] = int(binary.BigEndian.Uint32(b[4*i:]))
		}
		rp, err := newRangePartitionerAssigned(bounds, assign)
		if err != nil {
			return nil, nil, false
		}
		return rp, b[4*n:], true
	default:
		return nil, nil, false
	}
}

// Snapshot implements smr.StateMachine: the schema state (epoch, pending
// reconfiguration, partitioners) followed by the full shard as
// length-prefixed key/value pairs. All fields evolve deterministically, so
// snapshots of converged replicas remain byte-identical.
//
//mrp:deterministic
//mrp:codec snapshot encode
func (s *SM) Snapshot() []byte {
	var b []byte
	b = append(b, snapshotV4)
	b = binary.BigEndian.AppendUint64(b, s.epoch)
	b = binary.BigEndian.AppendUint64(b, s.pendingEpoch)
	var flags byte
	if s.warming {
		flags |= 1
	}
	if s.migrating {
		flags |= 2
	}
	if s.frozen {
		flags |= 4
	}
	if s.receiving {
		flags |= 8
	}
	b = append(b, flags, s.pendingKind)
	b = binary.BigEndian.AppendUint16(b, uint16(s.movedPart))
	b = appendString(b, s.movedFrom)
	b = appendPartitioner(b, s.partitioner)
	if s.prev != nil {
		b = append(b, 1)
		b = appendPartitioner(b, s.prev)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(s.data.Len()))
	s.data.Ascend(func(e Entry) bool {
		b = appendString(b, e.Key)
		b = appendBytes(b, e.Value)
		return true
	})
	b = s.votes.encode(b)
	return b
}

// Restore implements smr.StateMachine.
//
//mrp:deterministic
//mrp:codec snapshot decode
func (s *SM) Restore(b []byte) {
	s.data = NewSortedMap()
	s.clearPending()
	s.votes.reset()
	if len(b) < 1 || (b[0] != snapshotV3 && b[0] != snapshotV4) {
		return
	}
	version := b[0]
	b = b[1:]
	if len(b) < 20 {
		return
	}
	s.epoch = binary.BigEndian.Uint64(b)
	s.pendingEpoch = binary.BigEndian.Uint64(b[8:])
	flags := b[16]
	s.warming = flags&1 != 0
	s.migrating = flags&2 != 0
	s.frozen = flags&4 != 0
	s.receiving = flags&8 != 0
	s.pendingKind = b[17]
	s.movedPart = int(binary.BigEndian.Uint16(b[18:]))
	b = b[20:]
	var err error
	s.movedFrom, b, err = takeString(b)
	if err != nil {
		return
	}
	var ok bool
	s.partitioner, b, ok = takePartitioner(b)
	if !ok || len(b) < 1 {
		return
	}
	hasPrev := b[0] != 0
	b = b[1:]
	if hasPrev {
		s.prev, b, ok = takePartitioner(b)
		if !ok {
			return
		}
	}
	if len(b) < 4 {
		return
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	for i := 0; i < n; i++ {
		k, rest, err := takeString(b)
		if err != nil {
			return
		}
		v, rest2, err := takeBytes(rest)
		if err != nil {
			return
		}
		s.data.Put(k, append([]byte(nil), v...))
		b = rest2
	}
	if version >= snapshotV4 {
		s.votes.decode(b)
	}
}
