// Package store implements MRP-Store, the strongly consistent partitioned
// key-value service of the paper (Section 6.1): keys are strings, values
// byte arrays, the database is divided into partitions replicated with
// state-machine replication over Multi-Ring Paxos. Single-key requests are
// multicast to the partition owning the key; range scans are multicast to
// all partitions that may hold matching keys (via a global ring all
// replicas subscribe to, or by fan-out when partitions run independent
// rings). The service provides sequential consistency.
package store

import (
	"math/rand"
	"sync"
)

// maxLevel bounds the skiplist height (supports ~2^32 entries).
const maxLevel = 32

// skipNode is one entry in the sorted map.
type skipNode struct {
	key   string
	value []byte
	next  []*skipNode
}

// SortedMap is an in-memory ordered map (a skiplist), the storage engine of
// an MRP-Store partition replica ("database entries are stored in an
// in-memory tree at every replica", Section 7.2). It supports point
// operations and ordered range scans. Safe for concurrent use.
type SortedMap struct {
	mu    sync.RWMutex
	head  *skipNode
	level int
	size  int
	bytes int // total key+value payload bytes currently stored
	rng   *rand.Rand
}

// NewSortedMap creates an empty map.
func NewSortedMap() *SortedMap {
	return &SortedMap{
		head:  &skipNode{next: make([]*skipNode, maxLevel)},
		level: 1,
		rng:   rand.New(rand.NewSource(1)),
	}
}

// findPredecessors fills prev with the rightmost node before key per level.
func (m *SortedMap) findPredecessors(key string, prev *[maxLevel]*skipNode) *skipNode {
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		prev[i] = x
	}
	return x.next[0]
}

// Get returns the value for key.
func (m *SortedMap) Get(key string) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && x.key == key {
		return x.value, true
	}
	return nil, false
}

// Put inserts or replaces key's value and reports whether the key existed.
func (m *SortedMap) Put(key string, value []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	var prev [maxLevel]*skipNode
	x := m.findPredecessors(key, &prev)
	if x != nil && x.key == key {
		m.bytes += len(value) - len(x.value)
		x.value = value
		return true
	}
	lvl := 1
	for lvl < maxLevel && m.rng.Intn(4) == 0 {
		lvl++
	}
	if lvl > m.level {
		for i := m.level; i < lvl; i++ {
			prev[i] = m.head
		}
		m.level = lvl
	}
	n := &skipNode{key: key, value: value, next: make([]*skipNode, lvl)} //mrp:alloc — the inserted node lives in the map until deleted; the allocation is the data structure
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	m.size++
	m.bytes += len(key) + len(value)
	return false
}

// Delete removes key and reports whether it existed.
func (m *SortedMap) Delete(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	var prev [maxLevel]*skipNode
	x := m.findPredecessors(key, &prev)
	if x == nil || x.key != key {
		return false
	}
	for i := 0; i < m.level; i++ {
		if prev[i].next[i] == x {
			prev[i].next[i] = x.next[i]
		}
	}
	for m.level > 1 && m.head.next[m.level-1] == nil {
		m.level--
	}
	m.size--
	m.bytes -= len(x.key) + len(x.value)
	return true
}

// Len returns the number of entries.
func (m *SortedMap) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}

// Bytes returns the total key+value payload bytes currently stored — the
// size half of the per-partition accounting the auto-sharding controller
// watches.
func (m *SortedMap) Bytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Entry is one key-value pair.
type Entry struct {
	Key   string
	Value []byte
}

// Scan returns up to limit entries with from <= key <= to, in key order
// (limit <= 0 means unlimited). This implements the paper's
// scan(k, k') operation.
func (m *SortedMap) Scan(from, to string, limit int) []Entry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.head
	for i := m.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < from {
			x = x.next[i]
		}
	}
	x = x.next[0]
	var out []Entry
	for x != nil && (to == "" || x.key <= to) {
		out = append(out, Entry{Key: x.key, Value: x.value}) //mrp:alloc — scan results escape into the reply; the result size is unknown until the walk runs
		if limit > 0 && len(out) >= limit {
			break
		}
		x = x.next[0]
	}
	return out
}

// Ascend calls fn for every entry in key order until fn returns false.
func (m *SortedMap) Ascend(fn func(Entry) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for x := m.head.next[0]; x != nil; x = x.next[0] {
		if !fn(Entry{Key: x.key, Value: x.value}) {
			return
		}
	}
}
