package store

import (
	"fmt"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// This file holds the client-side half of the online split protocol: thin,
// totally-ordered admin commands the rebalance coordinator
// (internal/rebalance) composes into a zero-downtime repartitioning. They
// are exported for the coordinator, not for applications.

// AddRoute teaches the client the proposer addresses of a ring before that
// ring appears in any published schema (the coordinator must reach a split
// partition's ring while it is still warming).
func (c *Client) AddRoute(ring msg.RingID, addrs []transport.Addr) {
	c.smr.SetProposers(ring, addrs)
}

// PrepareSplit orders the range freeze through ring via (the global ring
// when available, else the source partition's own ring) and returns the
// frozen entries of the moved range, gathered specifically from the source
// partition src. epoch is the post-split epoch; newPart the partition
// index receiving [splitKey, ...).
func (c *Client) PrepareSplit(via msg.RingID, src int, splitKey string, newPart int, epoch uint64) ([]Entry, error) {
	o := op{kind: opPrepareSplit, epoch: epoch, part: uint16(src), newPart: uint16(newPart), key: splitKey}
	results, err := c.smr.ExecuteGather(via, o.encode(), 1, func(raw []byte) (int, bool) {
		res, err := decodeResult(raw)
		if err != nil || res.status != statusOK {
			return 0, false
		}
		return int(res.partition), int(res.partition) == src
	})
	if err != nil {
		return nil, err
	}
	raw, ok := results[src]
	if !ok {
		return nil, fmt.Errorf("store: no prepare-split reply from partition %d", src)
	}
	res, err := decodeResult(raw)
	if err != nil {
		return nil, err
	}
	return res.entries, nil
}

// MigrateChunk streams one chunk of frozen entries onto the new
// partition's ring; its warming replicas install the entries in delivery
// order, before any client command can reach them.
func (c *Client) MigrateChunk(ring msg.RingID, epoch uint64, entries []Entry) error {
	o := op{kind: opMigrate, epoch: epoch}
	for _, e := range entries {
		o.batch = append(o.batch, op{kind: opInsert, epoch: epoch, key: e.Key, value: e.Value})
	}
	res, err := c.exec(ring, o)
	if err != nil {
		return err
	}
	if res.status != statusOK || int(res.count) != len(entries) {
		return fmt.Errorf("store: migrate chunk applied %d/%d (status %d)", res.count, len(entries), res.status)
	}
	return nil
}

// ActivatePartition ends the new partition's warming phase: ordered on its
// ring after every migrated chunk, so a replica that serves any client
// command has necessarily installed the full moved range first.
func (c *Client) ActivatePartition(ring msg.RingID, part int, epoch uint64) error {
	res, err := c.exec(ring, op{kind: opActivatePart, epoch: epoch, part: uint16(part)})
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: activate partition %d failed (status %d)", part, res.status)
	}
	return nil
}

// CommitSplit orders the ownership flip through ring via: the source
// partition drops the moved range and every replica on the ring adopts the
// new epoch. From this point stale clients are redirected to the published
// schema.
func (c *Client) CommitSplit(via msg.RingID, src int, epoch uint64) error {
	res, err := c.exec(via, op{kind: opCommitSplit, epoch: epoch, part: uint16(src)})
	if err != nil {
		return err
	}
	if res.status != statusOK {
		return fmt.Errorf("store: commit split failed (status %d)", res.status)
	}
	return nil
}
