package store

import (
	"encoding/binary"
	"fmt"
	"time"
)

// This file is the stats surface of MRP-Store: per-partition load and size
// accounting kept by the state machines (over SortedMap), exposed through
// the deployment handle for co-located controllers and through a
// client-visible Stats read for remote ones. The auto-sharding controller
// (internal/autoshard) samples it to decide when to split a hot partition
// or merge a cold one.

// PartitionStats is one partition's accounting at a point in time.
type PartitionStats struct {
	// Partition is the partition index the stats describe.
	Partition int
	// Keys is the number of entries currently stored.
	Keys uint64
	// Bytes is the total key+value payload currently stored.
	Bytes uint64
	// Ops is the cumulative count of client data operations executed
	// (reads, writes, scans, batch sub-ops; admin and migration commands
	// do not count). It is process-local: a recovered replica restarts at
	// zero. Consumers derive load as the delta between two samples.
	Ops uint64
}

// Stats returns the partition's current accounting. Safe to call from any
// goroutine (the map is internally synchronized and the op counter
// atomic).
func (s *SM) Stats() PartitionStats {
	return PartitionStats{
		Partition: s.partition,
		Keys:      uint64(s.data.Len()),
		Bytes:     uint64(s.data.Bytes()),
		Ops:       s.statOps.Load(),
	}
}

// applyStats serves the ordered opStats read. It answers even while the
// partition is warming, migrating, or frozen — a controller watching a
// reconfiguration in flight still needs the numbers. A command that
// reached the wrong partition (a stale view routed it to a ring whose ID
// was recycled by a later reconfiguration) gets the typed wrong-epoch
// redirect, the same self-correction contract as every data op. Stats
// are an operator read, not steady-state traffic: cold path.
//
//mrp:coldpath
func (s *SM) applyStats(o op) result {
	if int(o.part) != s.partition {
		return s.wrongEpoch()
	}
	res := result{status: statusOK, partition: uint16(s.partition), epoch: s.epoch}
	res.value = encodeStatsPayload(s.Stats())
	return res
}

// encodeStatsPayload packs stats into a result value.
func encodeStatsPayload(st PartitionStats) []byte {
	b := make([]byte, 0, 24)
	b = binary.BigEndian.AppendUint64(b, st.Keys)
	b = binary.BigEndian.AppendUint64(b, st.Bytes)
	b = binary.BigEndian.AppendUint64(b, st.Ops)
	return b
}

func decodeStatsPayload(b []byte) (PartitionStats, error) {
	if len(b) < 24 {
		return PartitionStats{}, errBadOp
	}
	return PartitionStats{
		Keys:  binary.BigEndian.Uint64(b),
		Bytes: binary.BigEndian.Uint64(b[8:]),
		Ops:   binary.BigEndian.Uint64(b[16:]),
	}, nil
}

// PartitionStats reads one committed partition's accounting from the first
// live replica's state machine, without paying consensus — the sampling
// path of a controller co-located with the deployment handle. It returns
// false for retired tombstones, uncommitted partitions, and partitions
// with no live replica.
func (d *Deployment) PartitionStats(p int) (PartitionStats, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if p < 0 || p >= d.partitioner.N() || p >= len(d.parts) || d.parts[p].retired || p >= len(d.Replicas) {
		return PartitionStats{}, false
	}
	for _, h := range d.Replicas[p] {
		if h != nil && !h.Stopped() {
			return h.SM.Stats(), true
		}
	}
	return PartitionStats{}, false
}

// Stats reads one partition's accounting through the ordered read path
// (multicast on the partition's ring, answered by the first replica) — the
// client-visible half of the stats surface, for controllers and tools not
// co-located with the deployment.
//
//mrp:ordered
func (c *Client) Stats(partition int) (PartitionStats, error) {
	deadline := time.Now().Add(c.timeout)
	for {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return PartitionStats{}, err
			}
			continue
		}
		if partition < 0 || partition >= len(v.rings) || v.rings[partition] == 0 {
			return PartitionStats{}, fmt.Errorf("store: no live partition %d in schema epoch %d", partition, v.epoch)
		}
		res, err := c.exec(v.rings[partition], op{kind: opStats, epoch: v.epoch, part: uint16(partition)})
		if err != nil {
			if c.rerouteOnTimeout(err, v.epoch, deadline) {
				continue
			}
			return PartitionStats{}, err
		}
		if res.status == statusWrongEpoch {
			// Stale route (e.g. the ring ID was recycled for another
			// partition): refresh and retry, like every data op.
			if time.Now().After(deadline) {
				return PartitionStats{}, &WrongEpochError{ClientEpoch: v.epoch, ServerEpoch: res.epoch}
			}
			before := v.epoch
			_ = c.refresh()
			if c.currentView().epoch == before {
				time.Sleep(epochRetryDelay)
			}
			continue
		}
		if res.status != statusOK {
			return PartitionStats{}, fmt.Errorf("store: stats of partition %d failed (status %d)", partition, res.status)
		}
		st, err := decodeStatsPayload(res.value)
		if err != nil {
			return PartitionStats{}, err
		}
		st.Partition = partition
		return st, nil
	}
}
