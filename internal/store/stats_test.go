package store

import (
	"fmt"
	"testing"
	"time"
)

func TestSortedMapBytes(t *testing.T) {
	m := NewSortedMap()
	if m.Bytes() != 0 {
		t.Fatalf("empty map bytes = %d", m.Bytes())
	}
	m.Put("key", []byte("value")) // 3 + 5
	if m.Bytes() != 8 {
		t.Fatalf("bytes after insert = %d, want 8", m.Bytes())
	}
	m.Put("key", []byte("v")) // overwrite: 3 + 1
	if m.Bytes() != 4 {
		t.Fatalf("bytes after overwrite = %d, want 4", m.Bytes())
	}
	m.Put("k2", []byte("xx")) // + 4
	if m.Bytes() != 8 {
		t.Fatalf("bytes after second insert = %d, want 8", m.Bytes())
	}
	m.Delete("key")
	if m.Bytes() != 4 {
		t.Fatalf("bytes after delete = %d, want 4", m.Bytes())
	}
	m.Delete("nope")
	if m.Bytes() != 4 {
		t.Fatalf("bytes after no-op delete = %d, want 4", m.Bytes())
	}
}

func TestSMStatsAccounting(t *testing.T) {
	sm := NewSM(0, NewHashPartitioner(1))
	for i := 0; i < 10; i++ {
		sm.Execute(op{kind: opInsert, key: fmt.Sprintf("k%02d", i), value: []byte("val")}.encode())
	}
	sm.Execute(op{kind: opRead, key: "k03"}.encode())
	sm.Execute(op{kind: opScan, key: "k00", to: "k05"}.encode())
	sm.Execute(op{kind: opBatch, batch: []op{
		{kind: opInsert, key: "b1", value: []byte("x")},
		{kind: opInsert, key: "b2", value: []byte("y")},
	}}.encode())

	st := sm.Stats()
	if st.Keys != 12 {
		t.Fatalf("keys = %d, want 12", st.Keys)
	}
	wantBytes := uint64(10*(3+3) + 2*(2+1))
	if st.Bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	// 10 inserts + 1 read + 1 scan + 2 batch sub-ops.
	if st.Ops != 14 {
		t.Fatalf("ops = %d, want 14", st.Ops)
	}

	// The ordered stats read itself is not load: issue it twice and check
	// the op counter did not move.
	res, err := decodeResult(sm.Execute(op{kind: opStats, part: 0}.encode()))
	if err != nil || res.status != statusOK {
		t.Fatalf("stats read = %+v, %v", res, err)
	}
	decoded, err := decodeStatsPayload(res.value)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Keys != st.Keys || decoded.Bytes != st.Bytes || decoded.Ops != st.Ops {
		t.Fatalf("payload %+v != direct %+v", decoded, st)
	}
	if got := sm.Stats().Ops; got != 14 {
		t.Fatalf("stats read counted as load (ops = %d)", got)
	}

	// A stats read that reached the wrong partition (stale route onto a
	// recycled ring ID) gets the typed redirect, not a silent wrong answer.
	res, _ = decodeResult(sm.Execute(op{kind: opStats, part: 7}.encode()))
	if res.status != statusWrongEpoch {
		t.Fatalf("misaddressed stats read = %+v, want wrong-epoch redirect", res)
	}
}

func TestStatsEndToEnd(t *testing.T) {
	d := testDeploy(t, true, 2)
	cl := d.NewClient()
	defer cl.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if err := cl.Insert(fmt.Sprintf("user%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var totalKeys uint64
	for p := 0; p < d.Partitions(); p++ {
		remote, err := cl.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if remote.Partition != p {
			t.Fatalf("remote stats partition = %d, want %d", remote.Partition, p)
		}
		// The locally sampled replica can lag the one that answered the
		// ordered read by a few in-flight commands; poll for convergence.
		var local PartitionStats
		deadline := time.Now().Add(5 * time.Second)
		for {
			var ok bool
			local, ok = d.PartitionStats(p)
			if !ok {
				t.Fatalf("no deployment stats for partition %d", p)
			}
			if local.Keys == remote.Keys && local.Bytes == remote.Bytes || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if remote.Keys != local.Keys || remote.Bytes != local.Bytes {
			t.Fatalf("partition %d: remote %+v != local %+v", p, remote, local)
		}
		if local.Ops == 0 && local.Keys > 0 {
			t.Fatalf("partition %d served %d inserts but counted no ops", p, local.Keys)
		}
		totalKeys += local.Keys
	}
	if totalKeys != n {
		t.Fatalf("total keys = %d, want %d", totalKeys, n)
	}

	if _, ok := d.PartitionStats(99); ok {
		t.Fatal("stats for a non-existent partition")
	}
	if _, err := cl.Stats(99); err == nil {
		t.Fatal("client stats for a non-existent partition")
	}
}
