package store_test

import (
	"fmt"
	"net"
	"testing"
	"time"

	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/tcpnet"
	"mrp/internal/transport"
)

// freePorts reserves n distinct localhost TCP ports.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	var lns []net.Listener
	var addrs []string
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return addrs
}

// TestStoreOverRealTCP runs the full MRP-Store stack — rings, merge,
// replicas, client — over actual localhost sockets instead of the
// simulator, proving the deployment is transport-agnostic.
func TestStoreOverRealTCP(t *testing.T) {
	const partitions, replicas = 2, 3
	ports := freePorts(t, partitions*replicas)
	addrFor := func(p, r int) transport.Addr {
		return transport.Addr(ports[p*replicas+r])
	}
	d, err := store.Deploy(store.DeployConfig{
		EndpointFor: func(a transport.Addr) (transport.Endpoint, error) {
			if _, _, err := net.SplitHostPort(string(a)); err != nil {
				// Auxiliary endpoints (lease managers) are requested under
				// symbolic names; any ephemeral port serves them.
				return tcpnet.Listen("127.0.0.1:0")
			}
			return tcpnet.Listen(string(a))
		},
		AddrFor:      addrFor,
		Partitions:   partitions,
		Replicas:     replicas,
		GlobalRing:   true,
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     1000,
		RetryTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Stop()

	clientEp, err := tcpnet.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := d.NewClientAt(clientEp, 42_000_001)
	defer cl.Close()

	for i := 0; i < 10; i++ {
		if err := cl.Insert(fmt.Sprintf("tcp-%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	v, err := cl.Read("tcp-07")
	if err != nil || string(v) != "7" {
		t.Fatalf("read = %q, %v", v, err)
	}
	entries, err := cl.Scan("tcp-03", "tcp-06", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("scan over TCP = %d entries", len(entries))
	}
	if err := cl.Delete("tcp-00"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read("tcp-00"); err != store.ErrNotFound {
		t.Fatalf("read deleted = %v", err)
	}
}
