package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/storage"
)

// --- SortedMap ---

func TestSortedMapBasic(t *testing.T) {
	m := NewSortedMap()
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map returned a value")
	}
	if m.Put("a", []byte("1")) {
		t.Fatal("first put reported existing")
	}
	if !m.Put("a", []byte("2")) {
		t.Fatal("second put did not report existing")
	}
	v, ok := m.Get("a")
	if !ok || string(v) != "2" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("delete semantics")
	}
	if m.Len() != 0 {
		t.Fatalf("len after delete = %d", m.Len())
	}
}

func TestSortedMapScanOrder(t *testing.T) {
	m := NewSortedMap()
	keys := []string{"d", "a", "c", "b", "e"}
	for _, k := range keys {
		m.Put(k, []byte(k))
	}
	got := m.Scan("b", "d", 0)
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("scan = %v", got)
	}
	for i := range want {
		if got[i].Key != want[i] {
			t.Fatalf("scan[%d] = %q", i, got[i].Key)
		}
	}
	if n := len(m.Scan("a", "", 2)); n != 2 {
		t.Fatalf("limited scan = %d", n)
	}
	if n := len(m.Scan("a", "", 0)); n != 5 {
		t.Fatalf("unbounded scan = %d", n)
	}
}

// Property: SortedMap agrees with a reference map + sort.
func TestSortedMapMatchesReferenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m := NewSortedMap()
		ref := make(map[string]string)
		for _, o := range ops {
			k := fmt.Sprintf("k%03d", o%200)
			switch (o / 200) % 3 {
			case 0, 1:
				v := fmt.Sprint(o)
				m.Put(k, []byte(v))
				ref[k] = v
			case 2:
				m.Delete(k)
				delete(ref, k)
			}
		}
		if m.Len() != len(ref) {
			return false
		}
		var refKeys []string
		for k := range ref {
			refKeys = append(refKeys, k)
		}
		sort.Strings(refKeys)
		got := m.Scan("", "", 0)
		if len(got) != len(refKeys) {
			return false
		}
		for i, k := range refKeys {
			if got[i].Key != k || string(got[i].Value) != ref[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedMapLarge(t *testing.T) {
	m := NewSortedMap()
	rng := rand.New(rand.NewSource(5))
	const n = 5000
	perm := rng.Perm(n)
	for _, i := range perm {
		m.Put(fmt.Sprintf("%06d", i), []byte{1})
	}
	if m.Len() != n {
		t.Fatalf("len = %d", m.Len())
	}
	prev := ""
	count := 0
	m.Ascend(func(e Entry) bool {
		if e.Key <= prev {
			t.Fatalf("order violation: %q after %q", e.Key, prev)
		}
		prev = e.Key
		count++
		return true
	})
	if count != n {
		t.Fatalf("ascend visited %d", count)
	}
}

// --- Partitioners ---

func TestHashPartitioner(t *testing.T) {
	p := NewHashPartitioner(3)
	if p.N() != 3 {
		t.Fatal("N")
	}
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		pi := p.PartitionOf(fmt.Sprintf("key-%d", i))
		if pi < 0 || pi > 2 {
			t.Fatalf("partition %d", pi)
		}
		counts[pi]++
	}
	for i, c := range counts {
		if c < 500 {
			t.Fatalf("partition %d badly balanced: %v", i, counts)
		}
	}
	if len(p.PartitionsForRange("a", "b")) != 3 {
		t.Fatal("hash ranges must hit all partitions")
	}
	// Stable mapping.
	if p.PartitionOf("x") != p.PartitionOf("x") {
		t.Fatal("unstable mapping")
	}
}

func TestRangePartitioner(t *testing.T) {
	p := NewRangePartitioner([]string{"g", "p"})
	if p.N() != 3 {
		t.Fatal("N")
	}
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := p.PartitionOf(k); got != want {
			t.Fatalf("PartitionOf(%q) = %d, want %d", k, got, want)
		}
	}
	if got := p.PartitionsForRange("a", "f"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("range a-f = %v", got)
	}
	if got := p.PartitionsForRange("f", "q"); len(got) != 3 {
		t.Fatalf("range f-q = %v", got)
	}
	if got := p.PartitionsForRange("h", ""); len(got) != 2 || got[0] != 1 {
		t.Fatalf("range h-inf = %v", got)
	}
}

// --- Op / result codecs ---

func TestOpCodecRoundTrip(t *testing.T) {
	ops := []op{
		{kind: opRead, key: "k"},
		{kind: opDelete, key: "k2"},
		{kind: opUpdate, key: "k", value: []byte("v")},
		{kind: opInsert, key: "k", value: nil},
		{kind: opScan, key: "a", to: "z", limit: 42},
		{kind: opBatch, batch: []op{
			{kind: opInsert, key: "x", value: []byte("1")},
			{kind: opUpdate, key: "y", value: []byte("2")},
		}},
	}
	for _, o := range ops {
		got, err := decodeOp(o.encode())
		if err != nil {
			t.Fatalf("%d: %v", o.kind, err)
		}
		if got.kind != o.kind || got.key != o.key || got.to != o.to || got.limit != o.limit {
			t.Fatalf("round trip %+v -> %+v", o, got)
		}
		if len(got.batch) != len(o.batch) {
			t.Fatalf("batch len %d", len(got.batch))
		}
	}
}

func TestOpCodecErrors(t *testing.T) {
	if _, err := decodeOp(nil); err == nil {
		t.Fatal("nil should fail")
	}
	if _, err := decodeOp([]byte{99}); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if _, err := decodeOp([]byte{byte(opRead), 0xFF}); err == nil {
		t.Fatal("truncated should fail")
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := result{
		status:    statusOK,
		partition: 7,
		value:     []byte("val"),
		entries:   []Entry{{Key: "a", Value: []byte("1")}, {Key: "b", Value: nil}},
		count:     3,
	}
	got, err := decodeResult(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.status != r.status || got.partition != 7 || string(got.value) != "val" ||
		len(got.entries) != 2 || got.entries[0].Key != "a" || got.count != 3 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := decodeResult([]byte{1}); err == nil {
		t.Fatal("truncated result should fail")
	}
}

// --- SM ---

func TestSMExecuteTable1Ops(t *testing.T) {
	sm := NewSM(0, NewHashPartitioner(1))
	// insert
	res, _ := decodeResult(sm.Execute(op{kind: opInsert, key: "k", value: []byte("v1")}.encode()))
	if res.status != statusOK {
		t.Fatal("insert failed")
	}
	// read
	res, _ = decodeResult(sm.Execute(op{kind: opRead, key: "k"}.encode()))
	if res.status != statusOK || string(res.value) != "v1" {
		t.Fatalf("read = %+v", res)
	}
	// update existing
	res, _ = decodeResult(sm.Execute(op{kind: opUpdate, key: "k", value: []byte("v2")}.encode()))
	if res.status != statusOK {
		t.Fatal("update failed")
	}
	// update missing -> not found (Table 1: "if existent")
	res, _ = decodeResult(sm.Execute(op{kind: opUpdate, key: "nope", value: []byte("x")}.encode()))
	if res.status != statusNotFound {
		t.Fatalf("update missing = %+v", res)
	}
	// delete
	res, _ = decodeResult(sm.Execute(op{kind: opDelete, key: "k"}.encode()))
	if res.status != statusOK {
		t.Fatal("delete failed")
	}
	res, _ = decodeResult(sm.Execute(op{kind: opRead, key: "k"}.encode()))
	if res.status != statusNotFound {
		t.Fatal("read after delete should be not found")
	}
	// garbage
	res, _ = decodeResult(sm.Execute([]byte{0xFF}))
	if res.status != statusError {
		t.Fatal("garbage should be an error")
	}
}

func TestSMSnapshotRestore(t *testing.T) {
	sm := NewSM(2, NewHashPartitioner(3))
	for i := 0; i < 50; i++ {
		sm.Data().Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprint(i)))
	}
	snap := sm.Snapshot()
	sm2 := NewSM(2, NewHashPartitioner(3))
	sm2.Restore(snap)
	if sm2.Data().Len() != 50 {
		t.Fatalf("restored len = %d", sm2.Data().Len())
	}
	v, ok := sm2.Data().Get("k07")
	if !ok || string(v) != "7" {
		t.Fatalf("restored k07 = %q %v", v, ok)
	}
	if !bytes.Equal(sm2.Snapshot(), snap) {
		t.Fatal("snapshot not stable across restore")
	}
}

// --- End-to-end deployment ---

func testDeploy(t *testing.T, global bool, partitions int) *Deployment {
	t.Helper()
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := Deploy(DeployConfig{
		Net:          net,
		Partitions:   partitions,
		Replicas:     3,
		GlobalRing:   global,
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     200,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		d.Stop()
		net.Close()
	})
	return d
}

func TestStoreEndToEndGlobalRing(t *testing.T) {
	d := testDeploy(t, true, 3)
	cl := d.NewClient()
	defer cl.Close()

	if err := cl.Insert("user01", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("user02", []byte("bob")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Read("user01")
	if err != nil || string(v) != "alice" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if err := cl.Update("user01", []byte("alice2")); err != nil {
		t.Fatal(err)
	}
	v, _ = cl.Read("user01")
	if string(v) != "alice2" {
		t.Fatalf("after update = %q", v)
	}
	if _, err := cl.Read("ghost"); err != ErrNotFound {
		t.Fatalf("read missing = %v", err)
	}
	if err := cl.Delete("user02"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Read("user02"); err != ErrNotFound {
		t.Fatal("deleted key still readable")
	}
}

func TestStoreScanAcrossPartitions(t *testing.T) {
	d := testDeploy(t, true, 3)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if err := cl.Insert(fmt.Sprintf("user%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cl.Scan("user05", "user14", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("scan returned %d entries: %+v", len(entries), entries)
	}
	for i, e := range entries {
		want := fmt.Sprintf("user%02d", i+5)
		if e.Key != want {
			t.Fatalf("entry %d = %q, want %q", i, e.Key, want)
		}
	}
	// Limited scan.
	entries, err = cl.Scan("user00", "", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("limited scan = %d", len(entries))
	}
}

func TestStoreScanIndependentRings(t *testing.T) {
	d := testDeploy(t, false, 3)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 12; i++ {
		if err := cl.Insert(fmt.Sprintf("user%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := cl.Scan("user00", "user11", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("scan = %d entries", len(entries))
	}
}

func TestStoreRangePartitionedScanTouchesSubset(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	part := NewRangePartitioner([]string{"user10", "user20"})
	d, err := Deploy(DeployConfig{
		Net:          net,
		Partitions:   3,
		Replicas:     3,
		Partitioner:  part,
		StorageMode:  storage.InMemory,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop(); net.Close() })
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 30; i++ {
		if err := cl.Insert(fmt.Sprintf("user%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A range within partition 0 only.
	entries, err := cl.Scan("user02", "user08", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 7 {
		t.Fatalf("scan = %d", len(entries))
	}
}

func TestStoreWriteBatch(t *testing.T) {
	d := testDeploy(t, false, 2)
	cl := d.NewClient()
	defer cl.Close()
	var batch []Entry
	for i := 0; i < 20; i++ {
		batch = append(batch, Entry{Key: fmt.Sprintf("b%02d", i), Value: []byte("v")})
	}
	n, err := cl.WriteBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("batch applied %d", n)
	}
	v, err := cl.Read("b13")
	if err != nil || string(v) != "v" {
		t.Fatalf("read after batch = %q %v", v, err)
	}
}

func TestStorePreload(t *testing.T) {
	d := testDeploy(t, false, 3)
	var recs []Entry
	for i := 0; i < 50; i++ {
		recs = append(recs, Entry{Key: fmt.Sprintf("pre%02d", i), Value: []byte("x")})
	}
	d.Preload(recs)
	cl := d.NewClient()
	defer cl.Close()
	v, err := cl.Read("pre25")
	if err != nil || string(v) != "x" {
		t.Fatalf("preloaded read = %q %v", v, err)
	}
	// Preload respected partitioning: each replica only holds its shard.
	total := 0
	for _, hs := range d.Replicas {
		total += hs[0].SM.Data().Len()
	}
	if total != 50 {
		t.Fatalf("sum of shards = %d", total)
	}
}

func TestStoreReplicasConverge(t *testing.T) {
	d := testDeploy(t, true, 2)
	cl := d.NewClient()
	defer cl.Close()
	for i := 0; i < 30; i++ {
		if err := cl.Insert(fmt.Sprintf("c%02d", i), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		same := true
		for _, hs := range d.Replicas {
			s0 := hs[0].SM.Snapshot()
			for _, h := range hs[1:] {
				if !bytes.Equal(s0, h.SM.Snapshot()) {
					same = false
				}
			}
		}
		if same {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStoreCrashAndRecoverReplica(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := Deploy(DeployConfig{
		Net:          net,
		Partitions:   1,
		Replicas:     3,
		StorageMode:  storage.InMemory,
		RetryTimeout: 50 * time.Millisecond,
		TrimInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop(); net.Close() })
	cl := d.NewClient()
	defer cl.Close()

	for i := 0; i < 15; i++ {
		if err := cl.Insert(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d.CrashReplica(0, 2)
	for i := 15; i < 30; i++ {
		if err := cl.Insert(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Survivors checkpoint so the acceptors trim past the crash point.
	d.Replicas[0][0].Replica.Checkpoint()
	d.Replicas[0][1].Replica.Checkpoint()
	deadline := time.Now().Add(5 * time.Second)
	for d.TrimCoordinators()[0].Trims() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no trim")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.RecoverReplica(0, 2); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 35; i++ {
		if err := cl.Insert(fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline = time.Now().Add(15 * time.Second)
	for {
		s0 := d.Replicas[0][0].SM.Snapshot()
		s2 := d.Replicas[0][2].SM.Snapshot()
		if bytes.Equal(s0, s2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered replica did not converge")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
