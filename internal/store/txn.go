package store

import (
	"bytes"
	"encoding/binary"
	"sync"

	"mrp/internal/txn"
)

// This file holds the replica-side half of cross-partition transactions
// (internal/txn): the opTxn executor each participant's state machine
// runs at the transaction's merged delivery position, and the replica's
// own vote history for conditional (CAS) transactions.
//
// The execution model is the paper's (Section 3): the transaction is ONE
// command, atomically multicast to a ring set covering the participants;
// every replica of every participant delivers it in the same relative
// order and executes its half deterministically. Unconditional halves
// (get/put/transfer) are deterministic in isolation. Conditional halves
// (CAS) additionally exchange votes between participants — an S-SMR-style
// execution-atomicity exchange over the service plane — and all apply or
// all discard.

// TxnExchanger swaps CAS votes between the replicas of participant
// partitions. Implemented by *txn.Exchanger; the indirection keeps the SM
// constructible without a deployment (single-partition transactions never
// need it).
type TxnExchanger interface {
	// Exchange blocks until the combined verdict of transaction
	// (client, seq) among parts is decided, contributing own.
	Exchange(client, seq uint64, parts []uint16, own byte) byte
}

// SetTxnExchanger wires the vote exchanger in; call before the replica
// starts executing commands.
func (s *SM) SetTxnExchanger(ex TxnExchanger) { s.txnEx = ex }

// TxnVote returns this replica's own recorded vote for a transaction —
// the exchanger's OwnVote hook, serving vote pulls from peer replicas. It
// is safe to call from the service goroutine while the execution
// goroutine writes new votes.
func (s *SM) TxnVote(client, seq uint64) (byte, bool) {
	return s.votes.get(client, seq)
}

// applyTxn executes this partition's half of a cross-partition
// transaction at its merged delivery position. Cross-partition
// transactions decode and vote off the single-key fast path; the
// allocation discipline covers the fast path, so it stops here.
//
//mrp:coldpath
func (s *SM) applyTxn(o op) result {
	t, err := txn.Decode(o.value)
	if err != nil {
		return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}
	}
	if !containsU16(t.Parts, uint16(s.partition)) {
		// Delivered only because this replica shares a ring (typically the
		// global ring) with a participant: acknowledge without touching
		// state, so the client's gather can tell "not involved" from
		// "involved but redirected".
		return s.txnResult(txn.Result{Outcome: txn.OutcomeNotInvolved})
	}
	if s.warming || s.frozen {
		// A planned participant that cannot serve: a split-born partition
		// still warming, or a merge donor frozen by an ordered prepare.
		// Every replica of this partition is in the same state at this
		// delivery position (the freeze itself is ordered), so the verdict
		// is deterministic — and for a CAS it must still be voted, or the
		// other participants would wait forever.
		return s.txnRedirect(t)
	}
	mine := make([]txn.KeyOp, 0, len(t.Ops))
	for _, kop := range t.Ops {
		if kop.Part == uint16(s.partition) {
			mine = append(mine, kop)
		}
	}
	for _, kop := range mine {
		if !s.owns(kop.Key) {
			// The client's plan is stale (a reconfiguration moved the key):
			// redirect the whole half — applying a subset would break the
			// all-or-nothing contract of the half.
			return s.txnRedirect(t)
		}
	}
	switch t.Kind {
	case txn.KindGet:
		reads := make([]txn.KeyRead, 0, len(mine))
		for _, kop := range mine {
			v, ok := s.data.Get(kop.Key)
			reads = append(reads, txn.KeyRead{Key: kop.Key, Found: ok, Value: v})
		}
		s.statOps.Add(uint64(len(mine)))
		return s.txnResult(txn.Result{Outcome: txn.OutcomeApplied, Reads: reads})
	case txn.KindPut:
		for _, kop := range mine {
			s.data.Put(kop.Key, kop.Value)
		}
		s.statOps.Add(uint64(len(mine)))
		return s.txnResult(txn.Result{Outcome: txn.OutcomeApplied})
	case txn.KindTransfer:
		reads := make([]txn.KeyRead, 0, len(mine))
		for _, kop := range mine {
			cur, _ := s.data.Get(kop.Key)
			bal := txn.DecodeBalance(cur) + kop.Delta
			v := txn.EncodeBalance(bal)
			s.data.Put(kop.Key, v)
			reads = append(reads, txn.KeyRead{Key: kop.Key, Found: true, Value: v})
		}
		s.statOps.Add(uint64(len(mine)))
		return s.txnResult(txn.Result{Outcome: txn.OutcomeApplied, Reads: reads})
	case txn.KindCAS:
		return s.applyTxnCAS(t, mine)
	default:
		return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}
	}
}

// applyTxnCAS executes this partition's half of a conditional
// transaction: compute the local verdict, exchange votes with the other
// participants when there are any, then apply all local writes or none.
func (s *SM) applyTxnCAS(t txn.Txn, mine []txn.KeyOp) result {
	vote := byte(txn.VoteOK)
	actual := make([]txn.KeyRead, 0, len(mine))
	for _, kop := range mine {
		cur, found := s.data.Get(kop.Key)
		actual = append(actual, txn.KeyRead{Key: kop.Key, Found: found, Value: cur})
		match := (kop.Expect == nil && !found) ||
			(kop.Expect != nil && found && bytes.Equal(cur, kop.Expect))
		if !match {
			vote = txn.VoteMismatch
		}
	}
	if len(t.Parts) > 1 {
		// Record the own vote BEFORE exchanging so peer replicas pulling it
		// (Want) can be answered by the service goroutine while this
		// goroutine waits — and so a replay after recovery finds it again.
		s.votes.put(t.Client, t.Seq, vote)
		if s.txnEx == nil {
			return result{status: statusError, partition: uint16(s.partition), epoch: s.epoch}
		}
		vote = s.txnEx.Exchange(t.Client, t.Seq, t.Parts, vote)
	}
	switch vote {
	case txn.VoteWrongEpoch:
		// Some participant's half was unservable: nothing applied anywhere;
		// the client refreshes its schema, replans, and retries.
		return s.wrongEpoch()
	case txn.VoteMismatch:
		s.statOps.Add(uint64(len(mine)))
		return s.txnResult(txn.Result{Outcome: txn.OutcomeFailed, Reads: actual})
	default:
		for _, kop := range mine {
			if kop.Value == nil {
				s.data.Delete(kop.Key)
			} else {
				s.data.Put(kop.Key, kop.Value)
			}
		}
		s.statOps.Add(uint64(len(mine)))
		return s.txnResult(txn.Result{Outcome: txn.OutcomeApplied})
	}
}

// txnRedirect answers an unservable half. For a conditional transaction
// with several participants the verdict must still be voted — every other
// participant blocks on this partition's vote — and recorded, so late
// vote pulls (a peer replaying after recovery) can be answered.
func (s *SM) txnRedirect(t txn.Txn) result {
	if t.Kind == txn.KindCAS && len(t.Parts) > 1 {
		s.votes.put(t.Client, t.Seq, txn.VoteWrongEpoch)
		if s.txnEx != nil {
			s.txnEx.Exchange(t.Client, t.Seq, t.Parts, txn.VoteWrongEpoch)
		}
	}
	return s.wrongEpoch()
}

// txnResult wraps a participant reply into a store result.
func (s *SM) txnResult(r txn.Result) result {
	return result{
		status:    statusOK,
		partition: uint16(s.partition),
		epoch:     s.epoch,
		value:     txn.EncodeResult(r),
	}
}

func containsU16(set []uint16, v uint16) bool {
	for _, x := range set {
		if x == v {
			return true
		}
	}
	return false
}

// voteKey identifies one transaction in the vote history.
type voteKey struct {
	client uint64
	seq    uint64
}

// voteTableCap bounds the vote history kept for late vote pulls; entries
// are evicted FIFO in arrival (= delivery) order, which is identical
// across replicas, so eviction is deterministic too.
const voteTableCap = 4096

// voteTable is a replica's own CAS vote history: written by the execution
// goroutine as transactions are delivered, read by the service goroutine
// answering vote pulls from peer replicas. Contents are a pure function
// of the ordered command stream — snapshot-safe.
type voteTable struct {
	mu    sync.Mutex
	votes map[voteKey]byte
	order []voteKey
}

func (vt *voteTable) put(client, seq uint64, vote byte) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if vt.votes == nil {
		vt.votes = make(map[voteKey]byte)
	}
	k := voteKey{client: client, seq: seq}
	if _, dup := vt.votes[k]; !dup {
		vt.order = append(vt.order, k)
		if len(vt.order) > voteTableCap {
			delete(vt.votes, vt.order[0])
			vt.order = vt.order[1:]
		}
	}
	vt.votes[k] = vote
}

func (vt *voteTable) get(client, seq uint64) (byte, bool) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	v, ok := vt.votes[voteKey{client: client, seq: seq}]
	return v, ok
}

func (vt *voteTable) reset() {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.votes = nil
	vt.order = nil
}

// encode appends the history in FIFO order (identical across replicas:
// appends follow delivery order), keeping snapshots byte-identical.
//
//mrp:codec votes encode
func (vt *voteTable) encode(b []byte) []byte {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	b = binary.BigEndian.AppendUint32(b, uint32(len(vt.order)))
	for _, k := range vt.order {
		b = binary.BigEndian.AppendUint64(b, k.client)
		b = binary.BigEndian.AppendUint64(b, k.seq)
		b = append(b, vt.votes[k])
	}
	return b
}

//mrp:codec votes decode
func (vt *voteTable) decode(b []byte) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.votes = nil
	vt.order = nil
	if len(b) < 4 {
		return
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if n > len(b)/17 {
		return
	}
	vt.votes = make(map[voteKey]byte, n)
	vt.order = make([]voteKey, 0, n)
	for i := 0; i < n; i++ {
		k := voteKey{
			client: binary.BigEndian.Uint64(b),
			seq:    binary.BigEndian.Uint64(b[8:]),
		}
		vt.votes[k] = b[16]
		vt.order = append(vt.order, k)
		b = b[17:]
	}
}
