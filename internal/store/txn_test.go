package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/smr"
	"mrp/internal/txn"
)

func execSMTxn(t *testing.T, sm *SM, tx txn.Txn) (result, txn.Result) {
	t.Helper()
	res, err := decodeResult(sm.Execute(op{kind: opTxn, epoch: sm.Epoch(), value: tx.Encode()}.encode()))
	if err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if res.status != statusOK {
		return res, txn.Result{}
	}
	tr, err := txn.DecodeResult(res.value)
	if err != nil {
		t.Fatalf("decode txn result: %v", err)
	}
	return res, tr
}

func TestSMTxnTransferAndGet(t *testing.T) {
	sm := NewSM(0, NewHashPartitioner(1))
	tr := txn.Txn{Client: 1, Seq: 1, Kind: txn.KindTransfer, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: "a", Delta: -5}, {Part: 0, Key: "b", Delta: 5}}}
	_, res := execSMTxn(t, sm, tr)
	if res.Outcome != txn.OutcomeApplied || len(res.Reads) != 2 {
		t.Fatalf("transfer result = %+v", res)
	}
	if txn.DecodeBalance(res.Reads[0].Value) != -5 || txn.DecodeBalance(res.Reads[1].Value) != 5 {
		t.Fatalf("balances after transfer = %+v", res.Reads)
	}
	get := txn.Txn{Client: 1, Seq: 2, Kind: txn.KindGet, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: "a"}, {Part: 0, Key: "missing"}}}
	_, res = execSMTxn(t, sm, get)
	if res.Outcome != txn.OutcomeApplied {
		t.Fatalf("get outcome = %d", res.Outcome)
	}
	if !res.Reads[0].Found || txn.DecodeBalance(res.Reads[0].Value) != -5 {
		t.Fatalf("get read = %+v", res.Reads[0])
	}
	if res.Reads[1].Found {
		t.Fatal("missing key reported found")
	}
}

func TestSMTxnNotInvolvedAndRedirect(t *testing.T) {
	// A replica sharing a ring but not participating replies "not
	// involved"; a warming replica redirects with wrong-epoch.
	tr := txn.Txn{Client: 1, Seq: 1, Kind: txn.KindPut, Parts: []uint16{1},
		Ops: []txn.KeyOp{{Part: 1, Key: "k", Value: []byte("v")}}}
	bystander := NewSM(0, NewHashPartitioner(2))
	res, trr := execSMTxn(t, bystander, tr)
	if res.status != statusOK || trr.Outcome != txn.OutcomeNotInvolved {
		t.Fatalf("bystander reply = %+v / %+v", res, trr)
	}
	warming := NewSMAt(1, NewHashPartitioner(2), 3, true)
	res, _ = execSMTxn(t, warming, tr)
	if res.status != statusWrongEpoch {
		t.Fatalf("warming replica status = %d, want wrong-epoch redirect", res.status)
	}
}

func TestSMTxnCASSinglePartition(t *testing.T) {
	sm := NewSM(0, NewHashPartitioner(1))
	sm.Data().Put("k", []byte("old"))
	// Mismatch: expected value differs — reply carries the actual reads.
	cas := txn.Txn{Client: 1, Seq: 1, Kind: txn.KindCAS, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: "k", Expect: []byte("wrong"), Value: []byte("new")}}}
	_, res := execSMTxn(t, sm, cas)
	if res.Outcome != txn.OutcomeFailed {
		t.Fatalf("mismatched CAS outcome = %d", res.Outcome)
	}
	if len(res.Reads) != 1 || !res.Reads[0].Found || string(res.Reads[0].Value) != "old" {
		t.Fatalf("mismatched CAS reads = %+v", res.Reads)
	}
	if v, _ := sm.Data().Get("k"); string(v) != "old" {
		t.Fatal("mismatched CAS mutated state")
	}
	// Match: swap applies; nil New deletes.
	cas.Seq = 2
	cas.Ops[0].Expect = []byte("old")
	_, res = execSMTxn(t, sm, cas)
	if res.Outcome != txn.OutcomeApplied {
		t.Fatalf("matching CAS outcome = %d", res.Outcome)
	}
	if v, _ := sm.Data().Get("k"); string(v) != "new" {
		t.Fatalf("after CAS = %q", v)
	}
	del := txn.Txn{Client: 1, Seq: 3, Kind: txn.KindCAS, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: "k", Expect: []byte("new"), Value: nil}}}
	_, res = execSMTxn(t, sm, del)
	if res.Outcome != txn.OutcomeApplied {
		t.Fatalf("deleting CAS outcome = %d", res.Outcome)
	}
	if _, ok := sm.Data().Get("k"); ok {
		t.Fatal("deleting CAS left the key")
	}
}

// echoExchanger stands in for the vote exchange in single-SM tests: the
// combined verdict is just the local vote.
type echoExchanger struct{}

func (echoExchanger) Exchange(client, seq uint64, parts []uint16, own byte) byte { return own }

func TestSMSnapshotCarriesVoteHistory(t *testing.T) {
	sm := NewSM(0, NewHashPartitioner(2))
	sm.SetTxnExchanger(echoExchanger{})
	sm.Data().Put("k", []byte("old"))
	cas := txn.Txn{Client: 9, Seq: 4, Kind: txn.KindCAS, Parts: []uint16{0, 1},
		Ops: []txn.KeyOp{{Part: 0, Key: "k", Expect: []byte("old"), Value: []byte("new")},
			{Part: 1, Key: "other", Expect: nil, Value: []byte("x")}}}
	if _, res := execSMTxn(t, sm, cas); res.Outcome != txn.OutcomeApplied {
		t.Fatalf("CAS outcome = %d", res.Outcome)
	}
	if v, ok := sm.TxnVote(9, 4); !ok || v != txn.VoteOK {
		t.Fatalf("own vote = %d %v", v, ok)
	}
	snap := sm.Snapshot()
	if snap[0] != snapshotV4 {
		t.Fatalf("snapshot version = %d", snap[0])
	}
	sm2 := NewSM(0, NewHashPartitioner(2))
	sm2.Restore(snap)
	if v, ok := sm2.TxnVote(9, 4); !ok || v != txn.VoteOK {
		t.Fatalf("restored vote = %d %v — vote history lost across snapshot", v, ok)
	}
	if !bytes.Equal(sm2.Snapshot(), snap) {
		t.Fatal("snapshot not stable across restore")
	}
}

// pickKeys returns n distinct keys owned by partition part under p.
func pickKeys(t *testing.T, p Partitioner, part, n int) []string {
	t.Helper()
	var out []string
	for i := 0; len(out) < n && i < 100000; i++ {
		k := fmt.Sprintf("txnkey%05d", i)
		if p.PartitionOf(k) == part {
			out = append(out, k)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d keys on partition %d", n, part)
	}
	return out
}

func txnExecOnce(t *testing.T, cl *Client, v routeView, seq uint64, tx txn.Txn, rings []msg.RingID) map[int]result {
	t.Helper()
	replies, err := cl.execTxn(v.epoch, seq, tx, rings)
	if err != nil {
		t.Fatalf("execTxn: %v", err)
	}
	return replies
}

// TestTxnDuplicateRetryDoesNotDoubleApply is the ambiguous-timeout
// regression: the client re-proposes the SAME sequence number on a
// DIFFERENT ring (the global ring instead of the partition's own), as the
// sticky retry does after a replan. The replicas deliver the command a
// second time through the other ring's merge — the cross-ring dedup
// bitmap must answer from the result cache instead of applying twice.
func TestTxnDuplicateRetryDoesNotDoubleApply(t *testing.T) {
	d := testDeploy(t, true, 2)
	cl := d.NewClient()
	defer cl.Close()
	if err := cl.refresh(); err != nil {
		t.Fatal(err)
	}
	v := cl.viewFor()
	keys := pickKeys(t, v.partitioner, 0, 2)
	tx := txn.Txn{Client: cl.smr.ID(), Seq: cl.smr.Reserve(), Kind: txn.KindTransfer, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: keys[0], Delta: -5}, {Part: 0, Key: keys[1], Delta: 5}}}

	first := txnExecOnce(t, cl, v, tx.Seq, tx, []msg.RingID{v.rings[0]})
	if first[0].status != statusOK {
		t.Fatalf("first attempt status = %d", first[0].status)
	}
	// Re-propose the identical command on the global ring. The global
	// ring's coordinator has never seen this (client, seq), so the
	// proposal is ordered and delivered — the replica-side bitmap is the
	// only thing standing between us and a double transfer.
	second := txnExecOnce(t, cl, v, tx.Seq, tx, []msg.RingID{v.global})
	if second[0].status != statusOK {
		t.Fatalf("duplicate attempt status = %d", second[0].status)
	}
	if !bytes.Equal(first[0].value, second[0].value) {
		t.Fatal("duplicate reply differs from cached original")
	}
	for i, want := range []int64{-5, 5} {
		raw, err := cl.Read(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := txn.DecodeBalance(raw); got != want {
			t.Fatalf("balance[%d] = %d, want %d — transfer applied more than once", i, got, want)
		}
	}
}

// TestTxnInvertedArrivalAppliesOnce is the inverted-arrival variant: the
// old sequence number shows up on the global ring only after the client
// has already executed a LATER command there. The deterministic merge
// does not preserve one client's sequence order across rings, so a
// replica may see the re-proposed command at a merge position before OR
// after its partition-ring copy — the dedup bitmap must make both
// interleavings apply the transfer exactly once. The client may get the
// cached result back, or silence (when every replica is past the stale
// head); either way state moves exactly once and any reply equals the
// original.
func TestTxnInvertedArrivalAppliesOnce(t *testing.T) {
	restore := execTimeout
	execTimeout = 500 * time.Millisecond
	defer func() { execTimeout = restore }()

	d := testDeploy(t, true, 2)
	cl := d.NewClient()
	defer cl.Close()
	if err := cl.refresh(); err != nil {
		t.Fatal(err)
	}
	v := cl.viewFor()
	keys := pickKeys(t, v.partitioner, 0, 4)
	seqA := cl.smr.Reserve()
	txA := txn.Txn{Client: cl.smr.ID(), Seq: seqA, Kind: txn.KindTransfer, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: keys[0], Delta: -5}, {Part: 0, Key: keys[1], Delta: 5}}}
	first := txnExecOnce(t, cl, v, seqA, txA, []msg.RingID{v.rings[0]})
	if first[0].status != statusOK {
		t.Fatalf("seqA status = %d", first[0].status)
	}
	seqB := cl.smr.Reserve()
	txB := txn.Txn{Client: cl.smr.ID(), Seq: seqB, Kind: txn.KindTransfer, Parts: []uint16{0},
		Ops: []txn.KeyOp{{Part: 0, Key: keys[2], Delta: -3}, {Part: 0, Key: keys[3], Delta: 3}}}
	if r := txnExecOnce(t, cl, v, seqB, txB, []msg.RingID{v.global}); r[0].status != statusOK {
		t.Fatalf("seqB status = %d", r[0].status)
	}
	// Re-propose seqA on the global ring, out of sequence order.
	replies, err := cl.execTxn(v.epoch, seqA, txA, []msg.RingID{v.global})
	switch {
	case errors.Is(err, smr.ErrTimeout):
		// Every replica was already past the stale head: silent drop.
	case err == nil:
		// A replica answered — from its dedup cache, or by executing the
		// command at its first-arrival merge position. Both must produce
		// the original result.
		if !bytes.Equal(replies[0].value, first[0].value) {
			t.Fatalf("inverted re-delivery reply differs from original:\n got %x\nwant %x",
				replies[0].value, first[0].value)
		}
	default:
		t.Fatal(err)
	}
	for i, want := range []int64{-5, 5, -3, 3} {
		raw, err := cl.Read(keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if got := txn.DecodeBalance(raw); got != want {
			t.Fatalf("balance[%d] = %d, want %d — stale command re-applied", i, got, want)
		}
	}
}

// TestStoreMultiKeyOps drives the public multi-key API end to end across
// two partitions sharing the global ring.
func TestStoreMultiKeyOps(t *testing.T) {
	d := testDeploy(t, true, 2)
	cl := d.NewClient()
	defer cl.Close()

	if err := cl.MultiPut([]Entry{
		{Key: "mk-a", Value: []byte("1")},
		{Key: "mk-b", Value: []byte("2")},
		{Key: "mk-c", Value: []byte("3")},
	}); err != nil {
		t.Fatal(err)
	}
	got, err := cl.MultiGet([]string{"mk-a", "mk-b", "mk-c", "mk-ghost"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["mk-a"]) != "1" || string(got["mk-c"]) != "3" {
		t.Fatalf("MultiGet = %v", got)
	}

	fromBal, toBal, err := cl.Transfer("acct-x", "acct-y", 40)
	if err != nil {
		t.Fatal(err)
	}
	if fromBal != -40 || toBal != 40 {
		t.Fatalf("transfer balances = %d/%d", fromBal, toBal)
	}

	ok, err := cl.CompareAndSwapAcross([]CASOp{
		{Key: "mk-a", Expect: []byte("1"), New: []byte("one")},
		{Key: "mk-b", Expect: []byte("2"), New: []byte("two")},
	})
	if err != nil || !ok {
		t.Fatalf("CAS = %v, %v", ok, err)
	}
	ok, err = cl.CompareAndSwapAcross([]CASOp{
		{Key: "mk-a", Expect: []byte("stale"), New: []byte("nope")},
		{Key: "mk-c", Expect: []byte("3"), New: []byte("three")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("mismatched CAS reported applied")
	}
	v, err := cl.Read("mk-c")
	if err != nil || string(v) != "3" {
		t.Fatalf("mk-c after failed CAS = %q, %v — partial apply", v, err)
	}
	v, err = cl.Read("mk-a")
	if err != nil || string(v) != "one" {
		t.Fatalf("mk-a = %q, %v", v, err)
	}
}
