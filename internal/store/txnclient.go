package store

import (
	"errors"
	"fmt"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/smr"
	"mrp/internal/txn"
)

// This file holds the client-side half of cross-partition transactions:
// planning the minimal ring set against the cached schema view, the
// single multicast submission, the per-participant gather, and the two
// retry disciplines —
//
//   - definitive wrong-epoch redirects replan the unapplied halves under
//     a refreshed view and a NEW sequence number (the redirecting
//     replicas recorded the old one as executed, so reusing it would
//     only replay the redirect from their dedup cache);
//   - ambiguous timeouts retry the SAME sequence number with the same
//     participant plan, because some halves may have applied: the
//     replicas' cross-ring dedup bitmaps answer re-deliveries from the
//     result cache instead of applying twice.
//
// Halves that are known applied are excluded from every replan — a new
// owner partition has never seen the old sequence number, so re-sending
// a completed half there would double-apply it.

// ErrNoSharedRing reports a conditional (CompareAndSwapAcross)
// transaction whose participants share no single ring: the vote exchange
// is only deadlock-free under one merged delivery order, so the client
// refuses to fan it out. (Partitions created by a live split are not
// global-ring members; route conditional transactions around them or
// deploy with a global ring covering every participant.)
var ErrNoSharedRing = errors.New("store: participants share no ring; conditional transaction refused")

// CASOp is one key's conditional update in CompareAndSwapAcross.
type CASOp struct {
	Key string
	// Expect is the value the key must currently have; nil means the key
	// must be absent.
	Expect []byte
	// New is the value written when every comparison matches; nil deletes
	// the key.
	New []byte
}

// ForceGlobal switches the client to the naive baseline that multicasts
// EVERY transaction on the global ring, regardless of how few partitions
// it touches — the comparison leg of the txn bench figure. It fails fast
// when the deployment has no global ring.
func (c *Client) ForceGlobal(on bool) { c.forceGlobal = on }

// MultiGet reads several keys — possibly spanning partitions — as one
// multicast command and returns the found entries. Each participant
// partition serves its half at the command's merged delivery position;
// with a shared ring covering all participants the reads form one
// consistent cut, with fan-out (or a mid-flight reconfiguration
// redirect) the halves may come from different positions, like a
// fanned-out Scan.
//
//mrp:ordered
func (c *Client) MultiGet(keys []string) (map[string][]byte, error) {
	ops := make([]txn.KeyOp, len(keys))
	for i, k := range keys {
		ops[i] = txn.KeyOp{Key: k}
	}
	reads, err := c.multiOp(txn.KindGet, ops)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(reads))
	for _, r := range reads {
		if r.Found {
			out[r.Key] = r.Value
		}
	}
	return out, nil
}

// MultiPut writes several entries — possibly spanning partitions — as
// one multicast command.
//
//mrp:ordered
func (c *Client) MultiPut(entries []Entry) error {
	ops := make([]txn.KeyOp, len(entries))
	for i, e := range entries {
		ops[i] = txn.KeyOp{Key: e.Key, Value: e.Value}
	}
	_, err := c.multiOp(txn.KindPut, ops)
	return err
}

// Transfer atomically moves amount from one 64-bit balance to another —
// the bank transaction of the paper's Section 3 narrative — and returns
// the resulting balances (read-your-writes: the values are produced at
// the transaction's own delivery position). Missing accounts start at
// zero, so the sum over all balances is conserved by construction; no
// lock and no 2PC coordinator is involved, only one multicast ordered by
// the learner merge.
//
//mrp:ordered
func (c *Client) Transfer(from, to string, amount int64) (fromBal, toBal int64, err error) {
	reads, err := c.multiOp(txn.KindTransfer, []txn.KeyOp{
		{Key: from, Delta: -amount},
		{Key: to, Delta: amount},
	})
	if err != nil {
		return 0, 0, err
	}
	for _, r := range reads {
		switch r.Key {
		case from:
			fromBal = txn.DecodeBalance(r.Value)
		case to:
			toBal = txn.DecodeBalance(r.Value)
		}
	}
	if from == to {
		toBal = fromBal
	}
	return fromBal, toBal, nil
}

// CompareAndSwapAcross compares every listed key against its expected
// value and, only if ALL match, writes every new value — across
// partitions, atomically, without locks: participants deliver the one
// multicast command in the same relative order, exchange votes on their
// local comparisons, and unanimously apply or discard. It returns whether
// the swap was applied. Participants must share a ring (ErrNoSharedRing
// otherwise).
//
//mrp:ordered
func (c *Client) CompareAndSwapAcross(ops []CASOp) (bool, error) {
	if len(ops) == 0 {
		return true, nil
	}
	kops := make([]txn.KeyOp, len(ops))
	for i, o := range ops {
		kops[i] = txn.KeyOp{Key: o.Key, Expect: o.Expect, Value: o.New}
	}
	deadline := time.Now().Add(c.timeout)
	for {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return false, err
			}
			continue
		}
		plan, ok := c.planOps(v, kops, nil, nil)
		if !ok {
			if time.Now().After(deadline) {
				return false, &WrongEpochError{ClientEpoch: v.epoch}
			}
			c.repace(v.epoch)
			continue
		}
		if len(plan.parts) > 1 && !plan.single {
			return false, ErrNoSharedRing
		}
		// A fresh sequence number per planned attempt: a redirected CAS
		// applied nothing anywhere, and the redirecting replicas hold the
		// old number in their dedup caches.
		seq := c.smr.Reserve()
		t := txn.Txn{Client: c.smr.ID(), Seq: seq, Kind: txn.KindCAS, Parts: plan.parts, Ops: plan.ops}
		replies, err := c.execTxn(v.epoch, seq, t, plan.rings)
		for errors.Is(err, smr.ErrTimeout) && !time.Now().After(deadline) {
			// Ambiguous: the verdict may have been decided. Re-ask under the
			// SAME sequence number; replicas that executed it answer from
			// their dedup caches.
			_ = c.refresh()
			replies, err = c.execTxn(v.epoch, seq, t, plan.rings)
		}
		if err != nil {
			return false, err
		}
		redirected := false
		applied := true
		for _, p := range plan.parts {
			res := replies[int(p)]
			switch res.status {
			case statusWrongEpoch:
				redirected = true
			case statusOK:
				tr, derr := txn.DecodeResult(res.value)
				if derr != nil {
					return false, derr
				}
				if tr.Outcome != txn.OutcomeApplied {
					applied = false
				}
			default:
				return false, fmt.Errorf("store: server error for transaction (status %d)", res.status)
			}
		}
		if !redirected {
			return applied, nil
		}
		if time.Now().After(deadline) {
			return false, &WrongEpochError{ClientEpoch: v.epoch}
		}
		c.repace(v.epoch)
	}
}

// txnPlan is one attempt's routing decision.
type txnPlan struct {
	ops    []txn.KeyOp
	parts  []uint16
	rings  []msg.RingID
	single bool
}

// planOps assigns each pending op to its owner partition under v and
// computes the minimal ring cover. done/assigned (nil for all-pending
// single-shot planning) implement the multiOp replan: completed ops are
// excluded, and nil is returned as !ok when the view cannot route a key
// yet (the caller refreshes and retries).
func (c *Client) planOps(v routeView, ops []txn.KeyOp, done []bool, assigned []uint16) (txnPlan, bool) {
	var plan txnPlan
	seen := make(map[uint16]bool, 2)
	for i, o := range ops {
		if done != nil && done[i] {
			continue
		}
		p := v.partitioner.PartitionOf(o.Key)
		if p >= len(v.rings) || v.rings[p] == 0 {
			return txnPlan{}, false
		}
		o.Part = uint16(p)
		if assigned != nil {
			assigned[i] = o.Part
		}
		plan.ops = append(plan.ops, o)
		if !seen[o.Part] {
			seen[o.Part] = true
			plan.parts = append(plan.parts, o.Part)
		}
	}
	sortU16(plan.parts)
	return c.coverPlan(v, plan)
}

// replanSticky rebuilds the previous attempt's plan verbatim from the
// sticky assignment — the ambiguous-timeout path must resubmit the exact
// same halves to the exact same participants.
func (c *Client) replanSticky(v routeView, ops []txn.KeyOp, done []bool, assigned []uint16) (txnPlan, bool) {
	var plan txnPlan
	seen := make(map[uint16]bool, 2)
	for i, o := range ops {
		if done[i] {
			continue
		}
		o.Part = assigned[i]
		if int(o.Part) >= len(v.rings) || v.rings[o.Part] == 0 {
			// The assigned partition is gone (merged away) while the attempt
			// is still ambiguous. There is no safe reassignment — the old
			// partition may have applied the half — so fail the plan; the
			// caller errors out at its deadline (conservation over
			// availability).
			return txnPlan{}, false
		}
		plan.ops = append(plan.ops, o)
		if !seen[o.Part] {
			seen[o.Part] = true
			plan.parts = append(plan.parts, o.Part)
		}
	}
	sortU16(plan.parts)
	return c.coverPlan(v, plan)
}

// coverPlan computes the minimal ring set for a plan's participants.
func (c *Client) coverPlan(v routeView, plan txnPlan) (txnPlan, bool) {
	if len(plan.parts) == 0 {
		return txnPlan{}, false
	}
	if c.forceGlobal {
		if v.global == 0 {
			return txnPlan{}, false
		}
		plan.rings = []msg.RingID{v.global}
		plan.single = true
		return plan, true
	}
	members := make([]int, len(plan.parts))
	for i, p := range plan.parts {
		members[i] = int(p)
	}
	rings, single, err := multiring.Cover(members,
		func(p int) (msg.RingID, bool) {
			if p < len(v.rings) && v.rings[p] != 0 {
				return v.rings[p], true
			}
			return 0, false
		},
		v.global,
		func(p int) bool { return p < len(v.onGlobal) && v.onGlobal[p] })
	if err != nil {
		return txnPlan{}, false
	}
	plan.rings = rings
	plan.single = single
	return plan, true
}

// multiOp drives an unconditional transaction (get/put/transfer) to
// completion across redirects and ambiguous timeouts, returning the
// merged reads of every applied half.
func (c *Client) multiOp(kind byte, ops []txn.KeyOp) ([]txn.KeyRead, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	deadline := time.Now().Add(c.timeout)
	done := make([]bool, len(ops))
	assigned := make([]uint16, len(ops))
	reads := make(map[string]txn.KeyRead, len(ops))
	var seq uint64
	sticky := false
	for {
		v := c.viewFor()
		if v.partitioner == nil {
			if err := c.refresh(); err != nil {
				return nil, err
			}
			continue
		}
		var plan txnPlan
		var ok bool
		if sticky {
			plan, ok = c.replanSticky(v, ops, done, assigned)
			if !ok {
				return nil, fmt.Errorf("store: participant of an ambiguous transaction attempt no longer routable")
			}
		} else {
			plan, ok = c.planOps(v, ops, done, assigned)
			if !ok {
				if time.Now().After(deadline) {
					return nil, &WrongEpochError{ClientEpoch: v.epoch}
				}
				c.repace(v.epoch)
				continue
			}
			seq = c.smr.Reserve()
		}
		t := txn.Txn{Client: c.smr.ID(), Seq: seq, Kind: kind, Parts: plan.parts, Ops: plan.ops}
		replies, err := c.execTxn(v.epoch, seq, t, plan.rings)
		if err != nil {
			if errors.Is(err, smr.ErrTimeout) && !time.Now().After(deadline) {
				// Ambiguous: any half may have applied. Keep the sequence
				// number AND the participant assignment and resubmit the
				// identical command; dedup bitmaps make it idempotent.
				sticky = true
				_ = c.refresh()
				continue
			}
			return nil, err
		}
		sticky = false
		redirected := false
		for _, p := range plan.parts {
			res := replies[int(p)]
			switch res.status {
			case statusWrongEpoch:
				redirected = true
			case statusOK:
				tr, derr := txn.DecodeResult(res.value)
				if derr != nil {
					return nil, derr
				}
				if tr.Outcome != txn.OutcomeApplied {
					return nil, fmt.Errorf("store: unexpected transaction outcome %d", tr.Outcome)
				}
				for i := range ops {
					if !done[i] && assigned[i] == p {
						done[i] = true
					}
				}
				for _, r := range tr.Reads {
					reads[r.Key] = r
				}
			default:
				return nil, fmt.Errorf("store: server error for transaction (status %d)", res.status)
			}
		}
		if !redirected {
			break
		}
		if time.Now().After(deadline) {
			return nil, &WrongEpochError{ClientEpoch: v.epoch}
		}
		c.repace(v.epoch)
	}
	out := make([]txn.KeyRead, 0, len(ops))
	for _, o := range ops {
		if r, ok := reads[o.Key]; ok {
			out = append(out, r)
		} else {
			out = append(out, txn.KeyRead{Key: o.Key})
		}
	}
	return out, nil
}

// execTxn submits one planned transaction attempt: a single multicast to
// the plan's ring set, gathered until every participant partition has
// answered. The per-participant results carry the typed status —
// including the statusWrongEpoch redirect — that every caller must route
// on.
//
//mrp:ordered status
func (c *Client) execTxn(epoch, seq uint64, t txn.Txn, rings []msg.RingID) (map[int]result, error) {
	o := op{kind: opTxn, epoch: epoch, value: t.Encode()}
	involved := make(map[int]bool, len(t.Parts))
	for _, p := range t.Parts {
		involved[int(p)] = true
	}
	raws, err := c.smr.ExecuteGatherAt(seq, rings, o.encode(), len(t.Parts), func(raw []byte) (int, bool) {
		res, derr := decodeResult(raw)
		if derr != nil {
			return 0, false
		}
		return int(res.partition), involved[int(res.partition)]
	})
	if err != nil {
		return nil, err
	}
	out := make(map[int]result, len(raws))
	for p, raw := range raws {
		res, derr := decodeResult(raw)
		if derr != nil {
			return nil, derr
		}
		out[p] = res
	}
	return out, nil
}

// repace refreshes the view after a redirect and paces the retry when the
// schema has not been republished yet (migration freeze window).
func (c *Client) repace(before uint64) {
	_ = c.refresh()
	if c.currentView().epoch == before {
		time.Sleep(epochRetryDelay)
	}
}

func sortU16(s []uint16) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
