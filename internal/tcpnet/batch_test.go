package tcpnet

import (
	"bytes"
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// TestConcurrentSendAndClose hammers Send from several goroutines while the
// endpoint closes underneath them: no "send on closed channel" panic, no
// deadlock — late sends either queue, drop, or return ErrClosed.
func TestConcurrentSendAndClose(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		a, _ := Listen("127.0.0.1:0")
		b, _ := Listen("127.0.0.1:0")
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: uint64(i)}); err != nil {
						return
					}
				}
			}()
		}
		_ = a.Close()
		wg.Wait()
		_ = b.Close()
	}
}

// TestBatchCoalescesFrames queues a burst before the send loop can drain it
// and reads the raw TCP stream: the messages must arrive packed into fewer
// frames than messages, at least one of them a msg.Batch — the assertion
// the seed's one-frame-per-message sendLoop fails.
func TestBatchCoalescesFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	const total = 100
	for i := uint64(0); i < total; i++ {
		if err := a.Send(transport.Addr(ln.Addr().String()), &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))

	// First frame is the handshake.
	hello, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hello.(*msg.Proposal); !ok {
		t.Fatalf("handshake frame is %T", hello)
	}

	frames, received, batches := 0, 0, 0
	var next uint64
	for received < total {
		m, err := readFrame(conn)
		if err != nil {
			t.Fatalf("after %d/%d messages in %d frames: %v", received, total, frames, err)
		}
		frames++
		var subs []msg.Message
		if b, ok := m.(*msg.Batch); ok {
			batches++
			subs = b.Msgs
		} else {
			subs = []msg.Message{m}
		}
		for _, sub := range subs {
			q, ok := sub.(*msg.TrimQuery)
			if !ok {
				t.Fatalf("unexpected %T on the wire", sub)
			}
			if q.Seq != next {
				t.Fatalf("out of order: got %d want %d", q.Seq, next)
			}
			next++
			received++
		}
	}
	if frames >= total {
		t.Fatalf("no coalescing: %d messages used %d frames", total, frames)
	}
	if batches == 0 {
		t.Fatal("no msg.Batch frame on the wire")
	}
	t.Logf("%d messages in %d frames (%d batch frames)", total, frames, batches)
}

// TestBatchUnpackedBeforeInbox runs both sides over real endpoints: the
// receiver's inbox must carry individual messages in FIFO order even though
// the sender coalesces.
func TestBatchUnpackedBeforeInbox(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	defer b.Close()
	const total = 300
	for i := uint64(0); i < total; i++ {
		if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < total; i++ {
		select {
		case env := <-b.Inbox():
			if _, ok := env.Msg.(*msg.Batch); ok {
				t.Fatal("batch leaked into the inbox")
			}
			if got := env.Msg.(*msg.TrimQuery).Seq; got != i {
				t.Fatalf("out of order: got %d want %d", got, i)
			}
			if env.From != a.Addr() {
				t.Fatalf("from = %q", env.From)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
}

func TestCollectBatchBounds(t *testing.T) {
	mk := func(seq uint64) msg.Message { return &msg.TrimQuery{Ring: 1, Seq: seq} }
	one := mk(0)
	perMsg := 4 + one.Size()

	// Count bound.
	ch := make(chan msg.Message, 16)
	for i := uint64(1); i <= 10; i++ {
		ch <- mk(i)
	}
	batch, carry := collectBatch(ch, []msg.Message{one}, msg.BatchSize([]msg.Message{one}), 4, 1<<20)
	if len(batch) != 4 || carry != nil {
		t.Fatalf("count bound: len=%d carry=%v", len(batch), carry)
	}

	// Byte budget: room for exactly one more message; the second overflows
	// and is carried into the next batch.
	ch2 := make(chan msg.Message, 16)
	ch2 <- mk(1)
	ch2 <- mk(2)
	budget := msg.BatchSize([]msg.Message{one}) + perMsg
	batch, carry = collectBatch(ch2, []msg.Message{one}, msg.BatchSize([]msg.Message{one}), 128, budget)
	if len(batch) != 2 {
		t.Fatalf("byte budget: len=%d", len(batch))
	}
	if carry == nil || carry.(*msg.TrimQuery).Seq != 2 {
		t.Fatalf("carry = %v, want seq 2", carry)
	}

	// Empty queue stops immediately.
	batch, carry = collectBatch(make(chan msg.Message), []msg.Message{one}, 0, 128, 1<<20)
	if len(batch) != 1 || carry != nil {
		t.Fatal("empty queue should return the batch unchanged")
	}
}

func TestReadFrameRejectsBadFrames(t *testing.T) {
	frame := func(n uint32, body []byte) []byte {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], n)
		return append(hdr[:], body...)
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"zero length", frame(0, nil)},
		{"oversized length", frame(maxFrame+1, nil)},
		{"truncated body", frame(100, []byte{1, 2, 3})},
		{"unknown type", frame(1, []byte{0xff})},
		{"corrupt body", frame(3, []byte{byte(msg.TTrimQuery), 0x01, 0x02})},
		{"trailing bytes", func() []byte {
			f := appendFrame(nil, &msg.TrimQuery{Ring: 1, Seq: 1})
			f = append(f, 0, 0) // two bytes beyond the message encoding
			binary.BigEndian.PutUint32(f, uint32(len(f)-4))
			return f
		}()},
	}
	for _, tc := range cases {
		if _, err := readFrame(bytes.NewReader(tc.in)); err == nil {
			t.Errorf("%s: readFrame accepted a bad frame", tc.name)
		}
	}
}

// TestReadFrameAtExactlyMaxFrame checks the inclusive frame bound: a body of
// exactly maxFrame decodes, one byte more is rejected before the body is
// read.
func TestReadFrameAtExactlyMaxFrame(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates 2x64MB")
	}
	p := &msg.Proposal{Ring: 1, Payload: make([]byte, maxFrame-19)}
	if p.Size() != maxFrame {
		t.Fatalf("proposal body = %d, want %d", p.Size(), maxFrame)
	}
	f := appendFrame(make([]byte, 0, 4+maxFrame), p)
	m, err := readFrame(bytes.NewReader(f))
	if err != nil {
		t.Fatalf("frame at exactly maxFrame rejected: %v", err)
	}
	if got := len(m.(*msg.Proposal).Payload); got != maxFrame-19 {
		t.Fatalf("payload = %d bytes", got)
	}
}

// TestSendRejectsOversizedMessage: a message that cannot fit one frame is
// refused synchronously, not silently dropped in the send loop.
func TestSendRejectsOversizedMessage(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates 64MB")
	}
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	defer b.Close()
	huge := &msg.Proposal{Ring: 1, Payload: make([]byte, maxFrame)}
	if err := a.Send(b.Addr(), huge); err != ErrMessageTooLarge {
		t.Fatalf("err = %v, want ErrMessageTooLarge", err)
	}
	// The endpoint still works for sendable messages.
	if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		if env.Msg.(*msg.TrimQuery).Seq != 1 {
			t.Fatal("wrong message")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout after oversized rejection")
	}
}

// TestRedialAfterConnectionDrop crashes the receiver, restarts it on the
// same port, and checks that a later Send re-establishes the connection.
func TestRedialAfterConnectionDrop(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	if err := a.Send(addr, &msg.TrimQuery{Ring: 1, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("first message not delivered")
	}
	_ = b.Close() // crash the receiver; a's connection breaks

	b2, err := Listen(string(addr)) // recover on the same port
	if err != nil {
		t.Fatalf("re-listen on %s: %v", addr, err)
	}
	defer b2.Close()

	// The broken connection is only noticed on a failed write; keep sending
	// until the redialed connection delivers.
	deadline := time.After(10 * time.Second)
	for i := uint64(2); ; i++ {
		if err := a.Send(addr, &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
		select {
		case env := <-b2.Inbox():
			if env.From != a.Addr() {
				t.Fatalf("from = %q", env.From)
			}
			return // redial succeeded
		case <-time.After(50 * time.Millisecond):
		}
		select {
		case <-deadline:
			t.Fatal("no delivery after receiver restart")
		default:
		}
	}
}

// TestCloseUnblocksReadLoop fills the receiver's inbox so its readLoop
// blocks on the inbox send, then closes the endpoint: the blocked readLoop
// (and, transitively, the peer's sendLoop) must exit instead of leaking.
func TestCloseUnblocksReadLoop(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")

	// 4096 buffered + one blocked in the readLoop + slack.
	const total = 4200
	for i := uint64(0); i < total; i++ {
		if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the inbox is full, i.e. the readLoop is blocked.
	deadline := time.Now().Add(10 * time.Second)
	for len(b.inbox) < cap(b.inbox) {
		if time.Now().After(deadline) {
			t.Fatalf("inbox never filled: %d/%d", len(b.inbox), cap(b.inbox))
		}
		time.Sleep(time.Millisecond)
	}
	atClose := runtime.NumGoroutine()
	_ = b.Close()
	// b's readLoop and acceptLoop exit; closing the connection also makes
	// a's sendLoop fail its next write eventually.
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= atClose-2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain after Close: %d at close, %d now",
		atClose, runtime.NumGoroutine())
}

// TestUnbatchedOptOut checks the opt-out knob: a policy with Disabled set
// sends one frame per message.
func TestUnbatchedOptOut(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	a, err := Listen("127.0.0.1:0", WithBatch(transport.BatchPolicy{Disabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	const total = 50
	for i := uint64(0); i < total; i++ {
		if err := a.Send(transport.Addr(ln.Addr().String()), &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := readFrame(conn); err != nil { // handshake
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		m, err := readFrame(conn)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if _, ok := m.(*msg.Batch); ok {
			t.Fatal("batch frame despite Disabled policy")
		}
	}
}
