package tcpnet

import (
	"encoding/binary"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// seedFrameFor reproduces the pre-coalescing encode path (one msg.Marshal
// allocation plus one frame allocation per message) as the alloc baseline
// the pooled path is measured against.
func seedFrameFor(m msg.Message) []byte {
	body := msg.Marshal(m)
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame
}

func benchMsg() msg.Message {
	return &msg.Phase2{
		Ring: 1, Ballot: 1, Instance: 42, Votes: 1,
		Value: msg.Value{Batch: []msg.Entry{{Proposer: 3, Seq: 9, Data: make([]byte, 512)}}},
	}
}

// BenchmarkFrameEncodeSeed measures the seed's per-message frame encoding:
// 2 allocations per message.
func BenchmarkFrameEncodeSeed(b *testing.B) {
	m := benchMsg()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = seedFrameFor(m)
	}
}

// BenchmarkFrameEncodePooled measures the replacement: MarshalTo into a
// reused buffer — 0 allocations per message once the buffer is warm.
func BenchmarkFrameEncodePooled(b *testing.B) {
	m := benchMsg()
	buf := msg.GetBuffer()
	defer msg.PutBuffer(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*buf = appendFrame((*buf)[:0], m)
	}
}

// BenchmarkBatchFrameEncode measures encoding a 16-message backlog as one
// Batch frame into a reused buffer.
func BenchmarkBatchFrameEncode(b *testing.B) {
	batch := make([]msg.Message, 16)
	for i := range batch {
		batch[i] = benchMsg()
	}
	buf := msg.GetBuffer()
	defer msg.PutBuffer(buf)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		*buf = appendBatchFrame((*buf)[:0], batch)
	}
}

// benchSendPath pushes b.N small messages through real loopback sockets and
// waits for all of them, reporting allocations and per-message time for the
// whole send+receive path.
func benchSendPath(b *testing.B, policy transport.BatchPolicy) {
	a, err := Listen("127.0.0.1:0", WithBatch(policy))
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	recv, err := Listen("127.0.0.1:0", WithBatch(policy))
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-recv.Inbox()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(recv.Addr(), &msg.TrimQuery{Ring: 1, Seq: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		b.Fatal("timeout draining inbox")
	}
}

func BenchmarkTCPSendBatched(b *testing.B) {
	benchSendPath(b, transport.BatchPolicy{})
}

func BenchmarkTCPSendUnbatched(b *testing.B) {
	benchSendPath(b, transport.BatchPolicy{Disabled: true})
}
