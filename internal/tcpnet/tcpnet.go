// Package tcpnet implements the transport abstraction over real TCP
// sockets, so the same Ring Paxos / Multi-Ring Paxos code that runs in the
// simulator (internal/netsim) runs across actual machines. The paper's
// implementation likewise bases all communication within Multi-Ring Paxos
// on TCP (Section 7.1).
//
// Framing: each frame is a 4-byte big-endian length followed by the
// msg.Marshal encoding of one message. The first frame on every outbound
// connection is a handshake carrying the sender's advertised (listen)
// address, so receivers can attribute envelopes to stable peer addresses
// rather than ephemeral ports.
//
// Write coalescing: unless disabled by the endpoint's transport.BatchPolicy,
// the send loop drains its per-destination queue and packs the backlog into
// a single msg.Batch frame, so a burst of small protocol messages costs one
// frame and one syscall instead of one each (paper Section 4). Batches are
// unpacked on the receive side: the inbox always carries individual
// messages, whether or not the peer coalesces.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// maxFrame bounds a single frame (64 MB). Send rejects messages that cannot
// fit one frame with ErrMessageTooLarge, since the receiver would kill the
// connection on an oversized header.
const maxFrame = 64 << 20

// ErrMessageTooLarge reports a message whose encoding exceeds maxFrame.
var ErrMessageTooLarge = errors.New("tcpnet: message exceeds max frame size")

// Endpoint is a TCP-backed transport endpoint.
type Endpoint struct {
	ln    net.Listener
	addr  transport.Addr
	inbox chan transport.Envelope
	batch transport.BatchPolicy

	mu     sync.Mutex
	conns  map[transport.Addr]*outConn
	closed bool
	done   chan struct{}

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Option configures an Endpoint.
type Option func(*Endpoint)

// WithBatch sets the endpoint's write-coalescing policy. The default is the
// zero transport.BatchPolicy: coalescing enabled with default bounds.
func WithBatch(p transport.BatchPolicy) Option {
	return func(e *Endpoint) { e.batch = p }
}

// outConn is an outbound connection with a send queue.
type outConn struct {
	ch   chan msg.Message
	done chan struct{}
}

// Listen creates an endpoint listening on addr ("host:port"; use ":0" for
// an ephemeral port and read the bound address with Addr).
func Listen(addr string, opts ...Option) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	e := &Endpoint{
		ln:    ln,
		addr:  transport.Addr(ln.Addr().String()),
		inbox: make(chan transport.Envelope, 4096),
		conns: make(map[transport.Addr]*outConn),
		done:  make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	e.batch = e.batch.WithDefaults()
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements transport.Endpoint.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Inbox implements transport.Endpoint.
func (e *Endpoint) Inbox() <-chan transport.Envelope { return e.inbox }

// Send implements transport.Endpoint: messages are queued on a
// per-destination connection and serialized by its send loop; delivery is
// FIFO per destination. Failures drop the queued messages (crash
// semantics); the next Send redials.
func (e *Endpoint) Send(to transport.Addr, m msg.Message) error {
	if m.Size() > maxFrame {
		// Reject here so the failure surfaces at the call site instead of
		// a silent drop in the send loop (e.g. an oversized CkptData would
		// otherwise stall recovery with no error anywhere).
		return ErrMessageTooLarge
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	oc, ok := e.conns[to]
	if !ok {
		oc = &outConn{ch: make(chan msg.Message, 1024), done: make(chan struct{})}
		e.conns[to] = oc
		e.wg.Add(1)
		go e.sendLoop(to, oc)
	}
	e.mu.Unlock()
	select {
	case oc.ch <- m:
		return nil
	case <-oc.done:
		return nil // connection failed: dropped, like a broken TCP link
	case <-e.done:
		return transport.ErrClosed
	}
}

// appendFrame appends the length-prefixed encoding of m to dst.
func appendFrame(dst []byte, m msg.Message) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(m.Size()))
	return msg.MarshalTo(dst, m)
}

// appendBatchFrame appends one length-prefixed msg.Batch frame packing msgs.
func appendBatchFrame(dst []byte, msgs []msg.Message) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(msg.BatchSize(msgs)))
	return msg.AppendBatch(dst, msgs)
}

// collectBatch drains ch without blocking, appending to batch (which already
// holds its first message) until the policy's count bound, the byte budget,
// or an empty queue stops it. size is the encoded msg.Batch size of the
// current batch. It returns the extended batch and the message that
// overflowed the budget (to lead the next batch), if any.
func collectBatch(ch <-chan msg.Message, batch []msg.Message, size, maxCount, maxBytes int) (out []msg.Message, carry msg.Message) {
	for len(batch) < maxCount {
		select {
		case m := <-ch:
			if size+4+m.Size() > maxBytes {
				return batch, m
			}
			batch = append(batch, m)
			size += 4 + m.Size()
		default:
			return batch, nil
		}
	}
	return batch, nil
}

// sendLoop owns one outbound connection: it drains the queue, coalesces the
// backlog into Batch frames, and writes through a buffered writer that is
// flushed only when the queue is empty, so consecutive frames share
// syscalls. The encode buffer is pooled and reused across frames.
func (e *Endpoint) sendLoop(to transport.Addr, oc *outConn) {
	defer e.wg.Done()
	defer func() {
		close(oc.done)
		e.mu.Lock()
		if e.conns[to] == oc {
			delete(e.conns, to)
		}
		e.mu.Unlock()
	}()
	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		return
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 64<<10)
	buf := msg.GetBuffer()
	defer msg.PutBuffer(buf)
	// Handshake: advertise our stable address.
	*buf = appendFrame((*buf)[:0], &msg.Proposal{Payload: []byte(e.addr)})
	if _, err := bw.Write(*buf); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	maxBytes := e.batch.MaxBytes
	if maxBytes > maxFrame {
		maxBytes = maxFrame
	}
	var (
		pending []msg.Message
		carry   msg.Message
	)
	for {
		var m msg.Message
		if carry != nil {
			m, carry = carry, nil
		} else {
			select {
			case m = <-oc.ch:
			case <-e.done:
				return
			}
		}
		pending = append(pending[:0], m)
		if !e.batch.Disabled {
			pending, carry = collectBatch(oc.ch, pending, msg.BatchSize(pending), e.batch.MaxCount, maxBytes)
		}
		*buf = (*buf)[:0]
		if len(pending) > 1 {
			*buf = appendBatchFrame(*buf, pending)
		} else {
			// Single messages fit maxFrame by construction: Send rejects
			// oversized ones before they reach the queue.
			*buf = appendFrame(*buf, pending[0])
		}
		if _, err := bw.Write(*buf); err != nil {
			return
		}
		// With coalescing disabled every message must pay its own packet:
		// flush per frame rather than amortizing syscalls across a backlog,
		// so the unbatched baseline measures what it claims to.
		if e.batch.Disabled || (carry == nil && len(oc.ch) == 0) {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var from transport.Addr
	first := true
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		if first {
			first = false
			hello, ok := m.(*msg.Proposal)
			if !ok {
				return // protocol violation
			}
			from = transport.Addr(hello.Payload)
			continue
		}
		// Unpack transport-level batches: the inbox carries individual
		// messages whether or not the peer coalesces.
		if b, ok := m.(*msg.Batch); ok {
			for _, sub := range b.Msgs {
				if !e.deliver(transport.Envelope{From: from, Msg: sub}) {
					return
				}
			}
			continue
		}
		if !e.deliver(transport.Envelope{From: from, Msg: m}) {
			return
		}
	}
}

// deliver pushes one envelope into the inbox; a full inbox blocks,
// backpressuring the TCP stream. It reports false when the endpoint closes,
// so a blocked readLoop unwinds instead of leaking on the inbox send.
func (e *Endpoint) deliver(env transport.Envelope) bool {
	select {
	case e.inbox <- env:
		return true
	case <-e.done:
		return false
	}
}

func readFrame(r io.Reader) (msg.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, errors.New("tcpnet: bad frame length")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return msg.Unmarshal(body)
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.conns = map[transport.Addr]*outConn{}
	e.mu.Unlock()
	// Closing done (never oc.ch: a concurrent Send may be mid-enqueue)
	// releases sendLoops waiting on their queues and readLoops blocked on a
	// full inbox; queued messages are dropped, per the transport contract.
	close(e.done)
	_ = e.ln.Close()
	return nil
}
