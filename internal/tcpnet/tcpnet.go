// Package tcpnet implements the transport abstraction over real TCP
// sockets, so the same Ring Paxos / Multi-Ring Paxos code that runs in the
// simulator (internal/netsim) runs across actual machines. The paper's
// implementation likewise bases all communication within Multi-Ring Paxos
// on TCP (Section 7.1).
//
// Framing: each message is a 4-byte big-endian length followed by the
// msg.Marshal encoding. The first frame on every outbound connection is a
// handshake carrying the sender's advertised (listen) address, so receivers
// can attribute envelopes to stable peer addresses rather than ephemeral
// ports.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// maxFrame bounds a single message frame (64 MB).
const maxFrame = 64 << 20

// Endpoint is a TCP-backed transport endpoint.
type Endpoint struct {
	ln    net.Listener
	addr  transport.Addr
	inbox chan transport.Envelope

	mu     sync.Mutex
	conns  map[transport.Addr]*outConn
	closed bool

	wg sync.WaitGroup
}

var _ transport.Endpoint = (*Endpoint)(nil)

// outConn is an outbound connection with a send queue.
type outConn struct {
	ch   chan []byte
	done chan struct{}
}

// Listen creates an endpoint listening on addr ("host:port"; use ":0" for
// an ephemeral port and read the bound address with Addr).
func Listen(addr string) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: %w", err)
	}
	e := &Endpoint{
		ln:    ln,
		addr:  transport.Addr(ln.Addr().String()),
		inbox: make(chan transport.Envelope, 4096),
		conns: make(map[transport.Addr]*outConn),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements transport.Endpoint.
func (e *Endpoint) Addr() transport.Addr { return e.addr }

// Inbox implements transport.Endpoint.
func (e *Endpoint) Inbox() <-chan transport.Envelope { return e.inbox }

// Send implements transport.Endpoint: messages are serialized and queued
// on a per-destination connection; delivery is FIFO per destination.
// Failures drop the queued messages (crash semantics); the next Send
// redials.
func (e *Endpoint) Send(to transport.Addr, m msg.Message) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return transport.ErrClosed
	}
	oc, ok := e.conns[to]
	if !ok {
		oc = &outConn{ch: make(chan []byte, 1024), done: make(chan struct{})}
		e.conns[to] = oc
		e.wg.Add(1)
		go e.sendLoop(to, oc)
	}
	e.mu.Unlock()
	frame := frameFor(m)
	select {
	case oc.ch <- frame:
		return nil
	case <-oc.done:
		return nil // connection failed: dropped, like a broken TCP link
	}
}

func frameFor(m msg.Message) []byte {
	body := msg.Marshal(m)
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	return frame
}

// sendLoop owns one outbound connection.
func (e *Endpoint) sendLoop(to transport.Addr, oc *outConn) {
	defer e.wg.Done()
	defer func() {
		close(oc.done)
		e.mu.Lock()
		if e.conns[to] == oc {
			delete(e.conns, to)
		}
		e.mu.Unlock()
	}()
	conn, err := net.Dial("tcp", string(to))
	if err != nil {
		return
	}
	defer conn.Close()
	// Handshake: advertise our stable address.
	hello := frameFor(&msg.Proposal{Payload: []byte(e.addr)})
	if _, err := conn.Write(hello); err != nil {
		return
	}
	for frame := range oc.ch {
		if _, err := conn.Write(frame); err != nil {
			return
		}
	}
}

func (e *Endpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return
		}
		e.wg.Add(1)
		go e.readLoop(conn)
	}
}

func (e *Endpoint) readLoop(conn net.Conn) {
	defer e.wg.Done()
	defer conn.Close()
	var from transport.Addr
	first := true
	for {
		m, err := readFrame(conn)
		if err != nil {
			return
		}
		if first {
			first = false
			hello, ok := m.(*msg.Proposal)
			if !ok {
				return // protocol violation
			}
			from = transport.Addr(hello.Payload)
			continue
		}
		e.mu.Lock()
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		select {
		case e.inbox <- transport.Envelope{From: from, Msg: m}:
		default:
			// Inbox overflow: block, backpressuring the TCP stream.
			e.inbox <- transport.Envelope{From: from, Msg: m}
		}
	}
}

func readFrame(r io.Reader) (msg.Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return nil, errors.New("tcpnet: bad frame length")
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return msg.Unmarshal(body)
}

// Close implements transport.Endpoint.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = map[transport.Addr]*outConn{}
	e.mu.Unlock()
	_ = e.ln.Close()
	for _, oc := range conns {
		close(oc.ch)
	}
	return nil
}
