package tcpnet

import (
	"fmt"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/ringpaxos"
	"mrp/internal/storage"
	"mrp/internal/transport"
)

func TestSendReceive(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: 42}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		if env.From != a.Addr() {
			t.Fatalf("from = %q, want %q", env.From, a.Addr())
		}
		q := env.Msg.(*msg.TrimQuery)
		if q.Seq != 42 {
			t.Fatalf("seq = %d", q.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
}

func TestFIFOAndBidirectional(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	defer b.Close()
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := a.Send(b.Addr(), &msg.TrimQuery{Ring: 1, Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		select {
		case env := <-b.Inbox():
			if got := env.Msg.(*msg.TrimQuery).Seq; got != i {
				t.Fatalf("out of order: %d want %d", got, i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout at %d", i)
		}
	}
	// Reply direction reuses b's own outbound connection.
	if err := b.Send(a.Addr(), &msg.TrimCmd{Ring: 1, UpTo: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-a.Inbox():
		if env.Msg.(*msg.TrimCmd).UpTo != 7 {
			t.Fatal("bad reply")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout on reply")
	}
}

func TestLargeMessage(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	defer b.Close()
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(b.Addr(), &msg.Proposal{Ring: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Inbox():
		got := env.Msg.(*msg.Proposal).Payload
		if len(got) != len(payload) || got[12345] != payload[12345] {
			t.Fatal("payload corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("timeout")
	}
}

func TestSendToDeadPeerDoesNotBlock(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			_ = a.Send("127.0.0.1:1", &msg.TrimQuery{Ring: 1, Seq: uint64(i)})
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("send to dead peer blocked")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	_ = a.Close()
	if err := a.Send("127.0.0.1:1", &msg.TrimQuery{}); err != transport.ErrClosed {
		t.Fatalf("err = %v", err)
	}
	_ = a.Close() // idempotent
}

// TestRingPaxosOverTCP runs a full 3-node Ring Paxos ring over real
// sockets: the protocol code is identical to the simulator runs.
func TestRingPaxosOverTCP(t *testing.T) {
	eps := make([]*Endpoint, 3)
	for i := range eps {
		ep, err := Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ep.Close()
		eps[i] = ep
	}
	peers := make([]ringpaxos.Peer, 3)
	for i := range peers {
		peers[i] = ringpaxos.Peer{
			ID:    msg.NodeID(i + 1),
			Addr:  eps[i].Addr(),
			Roles: ringpaxos.RoleProposer | ringpaxos.RoleAcceptor | ringpaxos.RoleLearner,
		}
	}
	var nodes []*multiring.Node
	for i := range peers {
		node := multiring.NewNode(peers[i].ID, eps[i])
		if _, err := node.Join(ringpaxos.Config{
			Ring:         1,
			Peers:        peers,
			Coordinator:  peers[0].ID,
			Log:          storage.NewLog(storage.InMemory),
			BatchDelay:   time.Millisecond,
			RetryTimeout: 100 * time.Millisecond,
		}); err != nil {
			t.Fatal(err)
		}
		node.Start()
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	proc2, _ := nodes[2].Process(1)
	learner := multiring.NewLearner(1, proc2)
	learner.Start()
	defer learner.Stop()

	const total = 25
	for k := 0; k < total; k++ {
		if err := nodes[k%3].Multicast(1, []byte(fmt.Sprintf("tcp-%02d", k))); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	deadline := time.After(20 * time.Second)
	for len(got) < total {
		select {
		case d := <-learner.Deliveries():
			if !d.Skip {
				got[string(d.Entry.Data)] = true
			}
		case <-deadline:
			t.Fatalf("delivered %d/%d over TCP", len(got), total)
		}
	}
}
