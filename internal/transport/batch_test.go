package transport

import "testing"

func TestBatchPolicyDefaults(t *testing.T) {
	p := BatchPolicy{}.WithDefaults()
	if p.Disabled {
		t.Fatal("zero policy must enable coalescing")
	}
	if p.MaxBytes != DefaultBatchBytes || p.MaxCount != DefaultBatchCount {
		t.Fatalf("defaults = %+v", p)
	}
	// Explicit values survive.
	q := BatchPolicy{Disabled: true, MaxBytes: 7, MaxCount: 3}.WithDefaults()
	if !q.Disabled || q.MaxBytes != 7 || q.MaxCount != 3 {
		t.Fatalf("explicit values clobbered: %+v", q)
	}
}
