package transport

import (
	"sync"

	"mrp/internal/msg"
)

// Router demultiplexes an endpoint's inbox: ring-scoped messages go to the
// Ring Paxos process registered for that ring, everything else goes to the
// service handler. Batches are unpacked before dispatch.
//
// A node that participates in several rings (e.g. a learner subscribed to
// multiple multicast groups, Section 4 of the paper) runs one Router in
// front of its per-ring processes.
type Router struct {
	ep Endpoint

	mu      sync.RWMutex
	rings   map[msg.RingID]chan<- Envelope
	service func(Envelope)

	stopOnce sync.Once
	done     chan struct{}
}

// NewRouter creates a router over ep. Call Start to begin dispatching.
func NewRouter(ep Endpoint) *Router {
	return &Router{
		ep:    ep,
		rings: make(map[msg.RingID]chan<- Envelope),
		done:  make(chan struct{}),
	}
}

// Ring registers the input channel of the process handling one ring. It
// may be called while the router is running (a node subscribing to a ring
// at runtime).
func (r *Router) Ring(ring msg.RingID, ch chan<- Envelope) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rings[ring] = ch
}

// Unring removes a ring's route; subsequent messages for it are dropped.
// Used when a node unsubscribes from a ring at runtime.
func (r *Router) Unring(ring msg.RingID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.rings, ring)
}

// Service registers the handler for non-ring messages (checkpoint RPCs,
// client responses). The handler runs on the router goroutine and must not
// block. Must be called before Start.
func (r *Router) Service(fn func(Envelope)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.service = fn
}

// Start launches the dispatch goroutine. It returns immediately.
func (r *Router) Start() {
	go r.run()
}

// Stop terminates dispatching. It does not close the endpoint.
func (r *Router) Stop() {
	r.stopOnce.Do(func() { close(r.done) })
}

func (r *Router) run() {
	inbox := r.ep.Inbox()
	for {
		select {
		case env, ok := <-inbox:
			if !ok {
				return
			}
			r.dispatch(env)
		case <-r.done:
			return
		}
	}
}

func (r *Router) dispatch(env Envelope) {
	if b, ok := env.Msg.(*msg.Batch); ok {
		for _, sub := range b.Msgs {
			r.dispatch(Envelope{From: env.From, Msg: sub})
		}
		return
	}
	if ring, ok := msg.RingOf(env.Msg); ok {
		r.mu.RLock()
		ch := r.rings[ring]
		r.mu.RUnlock()
		if ch != nil {
			select {
			case ch <- env:
			case <-r.done:
			}
		}
		return
	}
	r.mu.RLock()
	fn := r.service
	r.mu.RUnlock()
	if fn != nil {
		fn(env)
	}
}

// HandlerMux is a late-bound message handler: protocol layers that are
// constructed after the ring processes (e.g. a replica whose learner needs
// the processes to exist first) register themselves via Set, while the
// ring configuration references Handle from the start.
type HandlerMux struct {
	mu sync.RWMutex
	fn func(Envelope)
}

// Set installs the handler.
func (h *HandlerMux) Set(fn func(Envelope)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fn = fn
}

// Handle dispatches to the installed handler, dropping the message if none
// is installed yet.
func (h *HandlerMux) Handle(env Envelope) {
	h.mu.RLock()
	fn := h.fn
	h.mu.RUnlock()
	if fn != nil {
		fn(env)
	}
}
