package transport_test

import (
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/netsim"
	"mrp/internal/transport"
)

func TestRouterDispatchByRing(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")

	r := transport.NewRouter(b)
	ring1 := make(chan transport.Envelope, 8)
	ring2 := make(chan transport.Envelope, 8)
	r.Ring(1, ring1)
	r.Ring(2, ring2)
	r.Start()
	defer r.Stop()

	_ = a.Send("b", &msg.TrimCmd{Ring: 2, UpTo: 5})
	_ = a.Send("b", &msg.TrimCmd{Ring: 1, UpTo: 9})

	select {
	case env := <-ring2:
		if env.Msg.(*msg.TrimCmd).UpTo != 5 {
			t.Fatal("wrong message on ring 2")
		}
	case <-time.After(time.Second):
		t.Fatal("ring 2 timeout")
	}
	select {
	case env := <-ring1:
		if env.Msg.(*msg.TrimCmd).UpTo != 9 {
			t.Fatal("wrong message on ring 1")
		}
	case <-time.After(time.Second):
		t.Fatal("ring 1 timeout")
	}
}

func TestRouterServiceHandler(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")

	r := transport.NewRouter(b)
	got := make(chan transport.Envelope, 1)
	r.Service(func(env transport.Envelope) { got <- env })
	r.Start()
	defer r.Stop()

	// CkptQuery is not ring-scoped: goes to the service handler.
	_ = a.Send("b", &msg.CkptQuery{Seq: 7})
	select {
	case env := <-got:
		if env.Msg.(*msg.CkptQuery).Seq != 7 {
			t.Fatal("wrong service message")
		}
		if env.From != "a" {
			t.Fatalf("from = %q", env.From)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestRouterUnpacksBatch(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")

	r := transport.NewRouter(b)
	ring1 := make(chan transport.Envelope, 8)
	svc := make(chan transport.Envelope, 8)
	r.Ring(1, ring1)
	r.Service(func(env transport.Envelope) { svc <- env })
	r.Start()
	defer r.Stop()

	_ = a.Send("b", &msg.Batch{Msgs: []msg.Message{
		&msg.TrimCmd{Ring: 1, UpTo: 1},
		&msg.CkptQuery{Seq: 2},
		&msg.TrimCmd{Ring: 1, UpTo: 3},
	}})
	deadline := time.After(time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-ring1:
		case <-deadline:
			t.Fatal("ring messages from batch missing")
		}
	}
	select {
	case <-svc:
	case <-deadline:
		t.Fatal("service message from batch missing")
	}
}

func TestRouterDropsUnregisteredRing(t *testing.T) {
	net := netsim.New(netsim.WithUniformLatency(0))
	defer net.Close()
	a := net.Endpoint("a")
	b := net.Endpoint("b")
	r := transport.NewRouter(b)
	r.Start()
	defer r.Stop()
	// Must not panic or block.
	_ = a.Send("b", &msg.TrimCmd{Ring: 99, UpTo: 1})
	time.Sleep(20 * time.Millisecond)
}

func TestRouterStopsOnEndpointClose(t *testing.T) {
	net := netsim.New()
	defer net.Close()
	b := net.Endpoint("b")
	r := transport.NewRouter(b)
	r.Start()
	_ = b.Close()
	// Router should exit when the inbox closes; Stop stays safe after.
	time.Sleep(10 * time.Millisecond)
	r.Stop()
}

func TestHandlerMux(t *testing.T) {
	var m transport.HandlerMux
	// Unset: drops silently.
	m.Handle(transport.Envelope{})
	var mu sync.Mutex
	count := 0
	m.Set(func(transport.Envelope) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				m.Handle(transport.Envelope{})
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if count != 400 {
		t.Fatalf("count = %d", count)
	}
}
