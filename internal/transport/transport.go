// Package transport defines the network abstraction shared by the simulated
// in-process network (internal/netsim) and the real TCP transport
// (internal/tcpnet). Ring Paxos and everything above it is written against
// these interfaces only, so the same protocol code runs both in simulation
// and on real sockets.
package transport

import (
	"errors"

	"mrp/internal/msg"
)

// Addr identifies an endpoint. The simulated network uses structured names
// ("region/node-3"); the TCP transport uses host:port strings.
type Addr string

// Envelope is a received message together with its sender.
type Envelope struct {
	From Addr
	Msg  msg.Message
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// BatchPolicy controls transport-level write coalescing: when a sender's
// per-destination queue holds more than one message, the transport packs the
// backlog into a single msg.Batch and writes it as one packet, amortizing
// per-message framing, syscall, and bandwidth-serialization overhead (paper
// Section 4: "different types of messages ... are often grouped into bigger
// packets before being forwarded").
//
// The zero value enables coalescing with default bounds. Coalescing never
// delays a message: a batch is exactly the backlog present when the sender
// loop dequeues, so an idle queue still sends immediately.
type BatchPolicy struct {
	// Disabled turns coalescing off: every message travels in its own
	// packet (the paper's Figure 3 baseline behavior).
	Disabled bool
	// MaxBytes caps the encoded size of one coalesced packet. Messages
	// beyond the cap start the next batch. Default 256 KB.
	MaxBytes int
	// MaxCount caps how many messages one batch may carry. Default 128.
	MaxCount int
}

// Default coalescing bounds.
const (
	DefaultBatchBytes = 256 << 10
	DefaultBatchCount = 128
)

// WithDefaults returns p with zero fields replaced by defaults.
func (p BatchPolicy) WithDefaults() BatchPolicy {
	if p.MaxBytes <= 0 {
		p.MaxBytes = DefaultBatchBytes
	}
	if p.MaxCount <= 0 {
		p.MaxCount = DefaultBatchCount
	}
	return p
}

// Endpoint is one node's attachment to a network.
//
// Send is asynchronous and never blocks on the remote node; messages between
// a fixed (sender, receiver) pair are delivered FIFO, like a TCP connection.
// Messages must be treated as immutable once sent: the simulated network
// passes pointers without copying, so a handler that wants to modify and
// forward a message (e.g. incrementing the vote count of a Phase 2A/2B)
// must forward a copy.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Send enqueues m for delivery to the endpoint at 'to'. Sends to unknown
	// or crashed endpoints are silently dropped, as on a real network.
	Send(to Addr, m msg.Message) error
	// Inbox returns the channel of received messages. It is closed when the
	// endpoint is closed.
	Inbox() <-chan Envelope
	// Close detaches the endpoint; pending and future messages are dropped.
	Close() error
}
