// Package transport defines the network abstraction shared by the simulated
// in-process network (internal/netsim) and the real TCP transport
// (internal/tcpnet). Ring Paxos and everything above it is written against
// these interfaces only, so the same protocol code runs both in simulation
// and on real sockets.
package transport

import (
	"errors"

	"mrp/internal/msg"
)

// Addr identifies an endpoint. The simulated network uses structured names
// ("region/node-3"); the TCP transport uses host:port strings.
type Addr string

// Envelope is a received message together with its sender.
type Envelope struct {
	From Addr
	Msg  msg.Message
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one node's attachment to a network.
//
// Send is asynchronous and never blocks on the remote node; messages between
// a fixed (sender, receiver) pair are delivered FIFO, like a TCP connection.
// Messages must be treated as immutable once sent: the simulated network
// passes pointers without copying, so a handler that wants to modify and
// forward a message (e.g. incrementing the vote count of a Phase 2A/2B)
// must forward a copy.
type Endpoint interface {
	// Addr returns this endpoint's address.
	Addr() Addr
	// Send enqueues m for delivery to the endpoint at 'to'. Sends to unknown
	// or crashed endpoints are silently dropped, as on a real network.
	Send(to Addr, m msg.Message) error
	// Inbox returns the channel of received messages. It is closed when the
	// endpoint is closed.
	Inbox() <-chan Envelope
	// Close detaches the endpoint; pending and future messages are dropped.
	Close() error
}
