package txn_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mrp/internal/netsim"
	"mrp/internal/rebalance"
	"mrp/internal/registry"
	"mrp/internal/storage"
	"mrp/internal/store"
	"mrp/internal/txn"
)

func acct(i int) string { return fmt.Sprintf("acct%04d", i) }

// TestBankConservationUnderLiveSplit is the transaction subsystem's
// acceptance scenario: concurrent bank transfers — many of them spanning
// partitions — run while the controller live-splits a partition and then
// merges it back. Every transfer is ONE multicast command ordered by the
// learner merge; there are no locks and no 2PC coordinator. The harness
// checks
//
//	(a) conservation: the sum over all balances never changes,
//	(b) read-your-writes: the balances a Transfer returns equal the
//	    worker's locally tracked expectation (each worker owns a
//	    disjoint account set, so its view is exact),
//	(c) transfers racing the reconfiguration abort-and-retry cleanly
//	    (typed wrong-epoch redirects replan; ambiguous timeouts retry
//	    under the same sequence number).
func TestBankConservationUnderLiveSplit(t *testing.T) {
	const (
		accounts = 1000
		initial  = int64(100)
		workers  = 4
	)
	net := netsim.New(netsim.WithUniformLatency(20 * time.Microsecond))
	d, err := store.Deploy(store.DeployConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		GlobalRing:   true,
		Partitioner:  store.NewRangePartitioner([]string{acct(500)}),
		StorageMode:  storage.InMemory,
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     9000,
		RetryTimeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		d.Stop()
		net.Close()
	}()
	reg := registry.New()
	if err := d.PublishSchema(reg); err != nil {
		t.Fatal(err)
	}
	recs := make([]store.Entry, accounts)
	for i := range recs {
		recs[i] = store.Entry{Key: acct(i), Value: txn.EncodeBalance(initial)}
	}
	d.Preload(recs)

	coord, err := rebalance.New(rebalance.Config{Store: d, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	var (
		stop      atomic.Bool
		transfers atomic.Uint64
		wg        sync.WaitGroup
		failMu    sync.Mutex
		fails     []string
	)
	failf := func(format string, args ...any) {
		failMu.Lock()
		fails = append(fails, fmt.Sprintf(format, args...))
		failMu.Unlock()
		stop.Store(true)
	}

	// Each worker owns a disjoint account set straddling every region the
	// reconfiguration touches: partition 0 (untouched), partition 1 below
	// the split point (stays), and above it (moves to the new partition,
	// then back at the merge). Transfers rotate through cross-partition
	// and cross-split-boundary pairs.
	for w := 0; w < workers; w++ {
		var cl *store.Client
		if w == 0 {
			cl, err = d.NewRegistryClient(reg)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			cl = d.NewClient()
		}
		own := []int{100 + w, 300 + w, 600 + w, 800 + w, 900 + w}
		wg.Add(1)
		go func(w int, cl *store.Client) {
			defer wg.Done()
			defer cl.Close()
			bal := make(map[string]int64, len(own))
			for _, i := range own {
				bal[acct(i)] = initial
			}
			for round := 0; !stop.Load(); round++ {
				from := acct(own[round%len(own)])
				to := acct(own[(round+1)%len(own)])
				amount := int64(1 + round%7)
				fromBal, toBal, err := cl.Transfer(from, to, amount)
				if err != nil {
					failf("worker %d: transfer %s->%s: %v", w, from, to, err)
					return
				}
				bal[from] -= amount
				bal[to] += amount
				if fromBal != bal[from] || toBal != bal[to] {
					failf("worker %d round %d: read-your-writes violated: %s=%d (want %d), %s=%d (want %d)",
						w, round, from, fromBal, bal[from], to, toBal, bal[to])
					return
				}
				transfers.Add(1)
			}
		}(w, cl)
	}

	settle := func(phase string) {
		time.Sleep(300 * time.Millisecond)
		if stop.Load() {
			t.Fatalf("worker failed during %s: %v", phase, fails)
		}
	}
	settle("steady state")
	newPart, err := coord.SplitPartition(1, acct(750))
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	settle("post-split")
	if err := coord.MergePartitions(1, newPart); err != nil {
		t.Fatalf("merge: %v", err)
	}
	settle("post-merge")
	stop.Store(true)
	wg.Wait()
	failMu.Lock()
	defer failMu.Unlock()
	if len(fails) > 0 {
		t.Fatal(fails)
	}
	if transfers.Load() == 0 {
		t.Fatal("no transfers completed")
	}

	// Conservation: the sum over every account equals the preloaded total.
	cl := d.NewClient()
	defer cl.Close()
	var total int64
	for lo := 0; lo < accounts; lo += 100 {
		keys := make([]string, 0, 100)
		for i := lo; i < lo+100; i++ {
			keys = append(keys, acct(i))
		}
		got, err := cl.MultiGet(keys)
		if err != nil {
			t.Fatalf("MultiGet [%d,%d): %v", lo, lo+100, err)
		}
		for _, k := range keys {
			total += txn.DecodeBalance(got[k])
		}
	}
	if want := int64(accounts) * initial; total != want {
		t.Fatalf("conservation violated: total = %d, want %d (%d transfers)", total, want, transfers.Load())
	}
	t.Logf("%d transfers across split+merge, total conserved at %d", transfers.Load(), total)
}
