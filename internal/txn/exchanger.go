package txn

import (
	"sync"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// voteKey identifies one transaction's vote record.
type voteKey struct {
	client uint64
	seq    uint64
}

// ExchangerConfig wires an Exchanger into one replica.
type ExchangerConfig struct {
	// Self is the partition this replica belongs to.
	Self uint16
	// Send transmits a vote to a peer replica over the service plane
	// (typically node.Endpoint().Send).
	Send func(to transport.Addr, m *msg.TxnVote) error
	// Resolve returns the current replica addresses of a participant
	// partition, or nil when the partition is unknown. It may consult
	// mutable deployment state; votes travel outside the ordered planes,
	// so address staleness only delays the exchange, never corrupts it.
	Resolve func(part uint16) []transport.Addr
	// OwnVote looks up this replica's own recorded vote for a
	// transaction (the state machine's deterministic vote history), so
	// pull requests from peers that lost a vote can be answered even
	// long after the local exchange finished.
	OwnVote func(client, seq uint64) (byte, bool)
	// Poll is the sleep between checks while waiting for remote votes
	// (default 200µs). Resend re-pushes the local vote to missing
	// participants every Resend worth of polls (default 25ms).
	Poll   time.Duration
	Resend time.Duration
}

// Exchanger swaps votes between the replicas of the participant
// partitions of a conditional transaction. Delivery order makes the
// exchange deadlock-free: a multi-partition KindCAS is only ever
// multicast on a single shared ring, so every participant delivers
// conflicting transactions in the same relative order and blocks on the
// same one at a time — there is no circular wait to construct.
//
// Votes are pushed once when a participant executes the transaction and
// re-pushed periodically with Want set, which doubles as a pull: any
// replica holding its own vote (live, or recovered and replaying)
// answers from its vote history. Received votes are transient
// soft-state — only a replica's OWN votes are deterministic (they are a
// pure function of the ordered command stream) and therefore eligible
// for snapshots; arrival timing of remote votes is not.
type Exchanger struct {
	cfg ExchangerConfig

	mu     sync.Mutex
	remote map[voteKey]map[uint16]byte
	order  []voteKey

	closeOnce sync.Once
	closed    chan struct{}
}

// remoteCap bounds the transient remote-vote table; old entries are
// evicted FIFO (a late vote for an evicted transaction is re-pulled on
// demand, so eviction only costs a round trip).
const remoteCap = 4096

// NewExchanger creates an exchanger for one replica.
func NewExchanger(cfg ExchangerConfig) *Exchanger {
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Microsecond
	}
	if cfg.Resend <= 0 {
		cfg.Resend = 25 * time.Millisecond
	}
	return &Exchanger{
		cfg:    cfg,
		remote: make(map[voteKey]map[uint16]byte),
		closed: make(chan struct{}),
	}
}

// Close unblocks any Exchange in progress (it returns VoteWrongEpoch, the
// abort verdict) so replica teardown cannot deadlock on a vote that will
// never arrive.
func (ex *Exchanger) Close() {
	ex.closeOnce.Do(func() { close(ex.closed) })
}

// Handle processes an incoming TxnVote. It runs on the node's service
// (router) goroutine and must not block: it deposits the sender's vote
// and, when the sender asked (Want), answers with this replica's own
// vote if the state machine has recorded one.
func (ex *Exchanger) Handle(env transport.Envelope) {
	tv, ok := env.Msg.(*msg.TxnVote)
	if !ok {
		return
	}
	k := voteKey{client: tv.ClientID, seq: tv.Seq}
	if tv.Part != ex.cfg.Self && tv.Vote != 0 {
		ex.mu.Lock()
		m := ex.remote[k]
		if m == nil {
			m = make(map[uint16]byte, 2)
			ex.remote[k] = m
			ex.order = append(ex.order, k)
			if len(ex.order) > remoteCap {
				delete(ex.remote, ex.order[0])
				ex.order = ex.order[1:]
			}
		}
		m[tv.Part] = tv.Vote
		ex.mu.Unlock()
	}
	if tv.Want && ex.cfg.OwnVote != nil {
		if v, ok := ex.cfg.OwnVote(tv.ClientID, tv.Seq); ok {
			_ = ex.cfg.Send(env.From, &msg.TxnVote{
				ClientID: tv.ClientID,
				Seq:      tv.Seq,
				Part:     ex.cfg.Self,
				Vote:     v,
			})
		}
	}
}

// Exchange swaps votes for transaction (client, seq) among parts and
// returns the combined verdict: the maximum vote code over all
// participants (VoteWrongEpoch > VoteMismatch > VoteOK). It blocks the
// execution goroutine until the verdict is decided.
//
// Determinism: the only early exit is a VoteWrongEpoch vote (own or
// received) — the maximum is already decided, so replicas that exit
// early and replicas that see the full vector compute the same verdict.
// A VoteMismatch must wait for the full vector: exiting early on it
// could let two replicas of the same partition diverge between "failed"
// and "wrong epoch" verdicts. Votes are never synthesized from liveness
// or topology observations, which are wall-clock dependent; if a
// participant is truly gone and can never answer, the exchange stalls
// until Close (teardown) aborts it — safety over liveness.
//
//mrp:deterministic
func (ex *Exchanger) Exchange(client, seq uint64, parts []uint16, own byte) byte {
	k := voteKey{client: client, seq: seq}
	ex.push(k, parts, own, true)
	if own == VoteWrongEpoch {
		return VoteWrongEpoch
	}
	resendEvery := int(ex.cfg.Resend / ex.cfg.Poll)
	if resendEvery < 1 {
		resendEvery = 1
	}
	for i := 0; ; i++ {
		verdict, done := ex.tally(k, parts, own)
		if done {
			return verdict
		}
		select {
		case <-ex.closed:
			return VoteWrongEpoch
		default:
		}
		if i%resendEvery == resendEvery-1 {
			ex.push(k, parts, own, true)
		}
		time.Sleep(ex.cfg.Poll)
	}
}

// tally combines the votes collected so far. done is true when every
// participant has voted, or as soon as any vote is VoteWrongEpoch.
func (ex *Exchanger) tally(k voteKey, parts []uint16, own byte) (byte, bool) {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	verdict := own
	complete := true
	for _, p := range parts {
		if p == ex.cfg.Self {
			continue
		}
		v, ok := ex.remote[k][p]
		if !ok {
			complete = false
			continue
		}
		if v > verdict {
			verdict = v
		}
	}
	if verdict == VoteWrongEpoch {
		return VoteWrongEpoch, true
	}
	return verdict, complete
}

// push sends this replica's vote to every replica of every other
// participant. want asks receivers to answer with their own vote.
func (ex *Exchanger) push(k voteKey, parts []uint16, own byte, want bool) {
	for _, p := range parts {
		if p == ex.cfg.Self {
			continue
		}
		for _, addr := range ex.cfg.Resolve(p) {
			_ = ex.cfg.Send(addr, &msg.TxnVote{
				ClientID: k.client,
				Seq:      k.seq,
				Part:     ex.cfg.Self,
				Vote:     own,
				Want:     want,
			})
		}
	}
}
