package txn

import (
	"bytes"
	"testing"
)

// FuzzTxnDecode checks that any byte slice accepted by Decode re-encodes
// to exactly the same bytes: the transaction wire format is canonical,
// so the cross-ring dedup bitmap sees identical payloads on retry.
func FuzzTxnDecode(f *testing.F) {
	for _, tx := range sampleTxns() {
		f.Add(tx.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		tx, err := Decode(data)
		if err != nil {
			return
		}
		if re := tx.Encode(); !bytes.Equal(re, data) {
			t.Fatalf("accepted input did not re-encode canonically:\n in: %x\nout: %x", data, re)
		}
		if err := tx.Validate(); err != nil {
			t.Fatalf("decoded transaction fails Validate: %v", err)
		}
	})
}

// FuzzResultDecode is the same canonicality property for reply payloads.
func FuzzResultDecode(f *testing.F) {
	f.Add(EncodeResult(Result{Outcome: OutcomeApplied}))
	f.Add(EncodeResult(Result{Outcome: OutcomeFailed, Reads: []KeyRead{
		{Key: "a", Found: true, Value: []byte("v")},
		{Key: "b", Found: false},
	}}))
	f.Add([]byte{})
	f.Add([]byte{4})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		if re := EncodeResult(r); !bytes.Equal(re, data) {
			t.Fatalf("accepted result did not re-encode canonically:\n in: %x\nout: %x", data, re)
		}
	})
}
