// Package txn implements cross-partition transactions over atomic
// multicast, the paper's headline programming model (conf_middleware
// BenzMPG14, Sections 3 and 6): a multi-key operation is encoded as ONE
// command, multicast once to the minimal set of rings covering the
// involved partitions, delivered in the same relative order at every
// replica of every participant by the deterministic learner merge, and
// applied by each participant's state machine executing its half. There
// are no locks and no 2PC coordinator: the merge order IS the commit
// order.
//
// The package holds the pieces that are independent of the store:
//
//   - the transaction payload and result codecs (strict and canonical, so
//     the op-encoding fuzzers can assert decode∘encode is the identity);
//   - the replica-side vote Exchanger used by conditional transactions
//     (CompareAndSwapAcross), an S-SMR-style execution-atomicity exchange:
//     participants deliver the command in the same relative order, compute
//     a local verdict, swap votes over the service plane, and all apply or
//     all discard.
//
// Unconditional transactions (MultiGet, MultiPut, transfers) need no vote
// exchange at all — each half is deterministic in isolation — which is
// exactly the "weaker but cheaper" point in the design space the paper's
// Figure 4 configuration occupies.
package txn

import (
	"errors"
	"fmt"
)

// Transaction kinds.
const (
	// KindGet reads every named key; each participant returns its half.
	KindGet byte = iota + 1
	// KindPut writes every named key unconditionally.
	KindPut
	// KindCAS compares every key against an expected value and swaps all
	// or none; participants exchange votes to agree on the outcome.
	KindCAS
	// KindTransfer applies a signed delta to each key's 64-bit balance
	// (missing keys start at zero) and returns the new balances: the
	// transfer-style read-modify-write of the bank workload.
	KindTransfer
	maxKind
)

// Votes exchanged between participants of a KindCAS transaction, and the
// combined verdicts. Codes are ordered by precedence: the combined verdict
// is the maximum over all participants' votes, so any participant seeing a
// VoteWrongEpoch vote may stop waiting early (no later vote can change the
// outcome), while VoteMismatch must wait for the full vector.
const (
	// VoteOK: every local key matched its expected value.
	VoteOK byte = iota + 1
	// VoteMismatch: at least one local key differed.
	VoteMismatch
	// VoteWrongEpoch: the participant no longer owns (or does not yet
	// own) at least one of its keys — the client must replan and retry.
	VoteWrongEpoch
)

// Transaction outcomes, reported per participant in Result.
const (
	// OutcomeApplied: this participant executed its half.
	OutcomeApplied byte = iota + 1
	// OutcomeFailed: a KindCAS comparison failed somewhere; nothing was
	// applied anywhere. Reads carry the actual values of the local keys.
	OutcomeFailed
	// OutcomeNotInvolved: the replica's partition is not a participant
	// (it received the command only because it shares a ring, e.g. the
	// global ring, with one).
	OutcomeNotInvolved
)

// KeyOp is one key's share of a transaction. Part is the participant
// partition the client planned for the key; replicas use it to select
// their half, and the plan being stale is exactly what the wrong-epoch
// redirect catches.
type KeyOp struct {
	Part uint16
	Key  string
	// Value is the new value for KindPut and KindCAS.
	Value []byte
	// Expect is the expected current value for KindCAS; nil means the key
	// is expected to be absent.
	Expect []byte
	// Delta is the signed balance change for KindTransfer.
	Delta int64
}

// Txn is the wire form of a cross-partition transaction. (Client, Seq)
// identify it globally — they mirror the ordered command's own identity,
// so a retried command carries the same transaction identity and the
// replicas' dedup bitmaps make re-execution idempotent. Parts is the
// sorted set of participant partitions the client planned against its
// schema view.
type Txn struct {
	Client uint64
	Seq    uint64
	Kind   byte
	Parts  []uint16
	Ops    []KeyOp
}

// KeyRead is one key's value as observed (or produced) by a participant.
type KeyRead struct {
	Key   string
	Found bool
	Value []byte
}

// Result is one participant's reply to a transaction: its verdict plus
// the reads its half produced (gets: current values; transfers: the new
// balances, giving the client read-your-writes; failed CAS: the actual
// values that broke the comparison).
type Result struct {
	Outcome byte
	Reads   []KeyRead
}

// ErrBadTxn reports a malformed or non-canonical transaction encoding.
var ErrBadTxn = errors.New("txn: malformed transaction payload")

// Encode serializes t canonically: fixed field order, big-endian sizes,
// sorted unique Parts. Decode rejects everything Encode cannot produce,
// so decode∘encode is the identity on accepted inputs (asserted by fuzz).
func (t Txn) Encode() []byte {
	b := make([]byte, 0, 64)
	b = appendU64(b, t.Client)
	b = appendU64(b, t.Seq)
	b = append(b, t.Kind)
	b = appendU16(b, uint16(len(t.Parts)))
	for _, p := range t.Parts {
		b = appendU16(b, p)
	}
	b = appendU32(b, uint32(len(t.Ops)))
	for _, o := range t.Ops {
		b = appendU16(b, o.Part)
		b = appendU16(b, uint16(len(o.Key)))
		b = append(b, o.Key...)
		switch t.Kind {
		case KindPut:
			b = appendBytes(b, o.Value)
		case KindCAS:
			b = appendOpt(b, o.Expect)
			b = appendOpt(b, o.Value)
		case KindTransfer:
			b = appendU64(b, uint64(o.Delta))
		}
	}
	return b
}

// Decode parses a transaction payload, enforcing canonical form: known
// kind, sorted unique participant set, every op assigned to a listed
// participant, and no trailing bytes.
func Decode(b []byte) (Txn, error) {
	var t Txn
	d := decoder{b: b}
	t.Client = d.u64()
	t.Seq = d.u64()
	t.Kind = d.u8()
	if t.Kind == 0 || t.Kind >= maxKind {
		return Txn{}, ErrBadTxn
	}
	np := int(d.u16())
	if d.err || np == 0 || np > d.remaining()/2 {
		return Txn{}, ErrBadTxn
	}
	t.Parts = make([]uint16, np)
	for i := range t.Parts {
		t.Parts[i] = d.u16()
		if i > 0 && t.Parts[i] <= t.Parts[i-1] {
			return Txn{}, ErrBadTxn
		}
	}
	no := int(d.u32())
	if d.err || no == 0 || no > d.remaining()/4 {
		return Txn{}, ErrBadTxn
	}
	t.Ops = make([]KeyOp, no)
	for i := range t.Ops {
		o := &t.Ops[i]
		o.Part = d.u16()
		if !containsPart(t.Parts, o.Part) {
			return Txn{}, ErrBadTxn
		}
		o.Key = string(d.take(int(d.u16())))
		switch t.Kind {
		case KindPut:
			o.Value = d.bytes()
		case KindCAS:
			o.Expect = d.opt()
			o.Value = d.opt()
		case KindTransfer:
			o.Delta = int64(d.u64())
		}
	}
	if d.err || d.remaining() != 0 {
		return Txn{}, ErrBadTxn
	}
	return t, nil
}

// EncodeResult serializes a participant reply canonically.
func EncodeResult(r Result) []byte {
	b := make([]byte, 0, 32)
	b = append(b, r.Outcome)
	b = appendU32(b, uint32(len(r.Reads)))
	for _, kr := range r.Reads {
		b = appendU16(b, uint16(len(kr.Key)))
		b = append(b, kr.Key...)
		if kr.Found {
			b = append(b, 1)
			b = appendBytes(b, kr.Value)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// DecodeResult parses a participant reply, enforcing canonical form.
func DecodeResult(b []byte) (Result, error) {
	var r Result
	d := decoder{b: b}
	r.Outcome = d.u8()
	if r.Outcome == 0 || r.Outcome > OutcomeNotInvolved {
		return Result{}, ErrBadTxn
	}
	n := int(d.u32())
	if d.err || n > d.remaining()/3 {
		return Result{}, ErrBadTxn
	}
	r.Reads = make([]KeyRead, n)
	for i := range r.Reads {
		kr := &r.Reads[i]
		kr.Key = string(d.take(int(d.u16())))
		switch d.u8() {
		case 1:
			kr.Found = true
			kr.Value = d.bytes()
		case 0:
		default:
			return Result{}, ErrBadTxn
		}
	}
	if d.err || d.remaining() != 0 {
		return Result{}, ErrBadTxn
	}
	return r, nil
}

// EncodeBalance renders a 64-bit signed account balance as a stored
// value; DecodeBalance reads one back (absent or malformed values count
// as zero, so transfers create accounts on first touch).
func EncodeBalance(v int64) []byte {
	return appendU64(nil, uint64(v))
}

// DecodeBalance parses a stored balance; anything but exactly 8 bytes is
// treated as a zero balance.
func DecodeBalance(b []byte) int64 {
	if len(b) != 8 {
		return 0
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return int64(v)
}

// Validate checks the client-side invariants Encode relies on: a known
// kind, at least one op, sorted unique parts covering exactly the ops'
// assignments.
func (t Txn) Validate() error {
	if t.Kind == 0 || t.Kind >= maxKind {
		return fmt.Errorf("txn: unknown kind %d", t.Kind)
	}
	if len(t.Ops) == 0 {
		return errors.New("txn: no operations")
	}
	for i := 1; i < len(t.Parts); i++ {
		if t.Parts[i] <= t.Parts[i-1] {
			return errors.New("txn: participant set not sorted")
		}
	}
	for _, o := range t.Ops {
		if !containsPart(t.Parts, o.Part) {
			return fmt.Errorf("txn: op on key %q assigned to unlisted partition %d", o.Key, o.Part)
		}
	}
	return nil
}

func containsPart(parts []uint16, p uint16) bool {
	for _, q := range parts {
		if q == p {
			return true
		}
	}
	return false
}

// --- minimal canonical primitive codec -------------------------------

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v>>8), byte(v))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// appendBytes writes a u32 length prefix then the bytes (nil encodes as
// the empty slice).
func appendBytes(b, v []byte) []byte {
	b = appendU32(b, uint32(len(v)))
	return append(b, v...)
}

// appendOpt writes a presence flag then, when present, the bytes; it
// distinguishes nil (absent) from empty (present, zero length), which
// KindCAS needs: Expect=nil means "key must not exist".
func appendOpt(b, v []byte) []byte {
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	return appendBytes(b, v)
}

type decoder struct {
	b   []byte
	off int
	err bool
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) take(n int) []byte {
	if d.err || n < 0 || d.remaining() < n {
		d.err = true
		return nil
	}
	v := d.b[d.off : d.off+n]
	d.off += n
	return v
}

func (d *decoder) u8() byte {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}

func (d *decoder) u16() uint16 {
	v := d.take(2)
	if v == nil {
		return 0
	}
	return uint16(v[0])<<8 | uint16(v[1])
}

func (d *decoder) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return uint32(v[0])<<24 | uint32(v[1])<<16 | uint32(v[2])<<8 | uint32(v[3])
}

func (d *decoder) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	var x uint64
	for _, c := range v {
		x = x<<8 | uint64(c)
	}
	return x
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	v := d.take(n)
	if d.err {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}

func (d *decoder) opt() []byte {
	switch d.u8() {
	case 0:
		return nil
	case 1:
		return d.bytes()
	default:
		d.err = true
		return nil
	}
}
