package txn

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
	"time"

	"mrp/internal/msg"
	"mrp/internal/transport"
)

// sampleTxns returns one representative transaction per kind.
func sampleTxns() []Txn {
	return []Txn{
		{Client: 7, Seq: 42, Kind: KindGet, Parts: []uint16{0, 2},
			Ops: []KeyOp{{Part: 0, Key: "a"}, {Part: 2, Key: "zz"}}},
		{Client: 1, Seq: 2, Kind: KindPut, Parts: []uint16{1},
			Ops: []KeyOp{{Part: 1, Key: "k", Value: []byte("v")}, {Part: 1, Key: "k2", Value: []byte{}}}},
		{Client: 9, Seq: 3, Kind: KindCAS, Parts: []uint16{0, 1},
			Ops: []KeyOp{
				{Part: 0, Key: "x", Expect: []byte("old"), Value: []byte("new")},
				{Part: 1, Key: "y", Expect: nil, Value: []byte("created")},
				{Part: 1, Key: "z", Expect: []byte("gone"), Value: nil},
			}},
		{Client: 3, Seq: 100, Kind: KindTransfer, Parts: []uint16{0, 5},
			Ops: []KeyOp{{Part: 0, Key: "from", Delta: -7}, {Part: 5, Key: "to", Delta: 7}}},
	}
}

func TestTxnRoundTrip(t *testing.T) {
	for _, tx := range sampleTxns() {
		enc := tx.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", tx.Kind, err)
		}
		re := got.Encode()
		if !bytes.Equal(enc, re) {
			t.Fatalf("kind %d: non-canonical re-encode", tx.Kind)
		}
		if got.Client != tx.Client || got.Seq != tx.Seq || got.Kind != tx.Kind {
			t.Fatalf("kind %d: header mismatch: %+v vs %+v", tx.Kind, got, tx)
		}
		if !reflect.DeepEqual(got.Parts, tx.Parts) {
			t.Fatalf("kind %d: parts mismatch", tx.Kind)
		}
		if len(got.Ops) != len(tx.Ops) {
			t.Fatalf("kind %d: ops mismatch", tx.Kind)
		}
	}
}

func TestTxnDecodeRejects(t *testing.T) {
	base := sampleTxns()[0]
	cases := map[string][]byte{
		"empty":          {},
		"unknown kind":   {0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 99},
		"trailing bytes": append(base.Encode(), 0),
	}
	// Unsorted participant set.
	bad := base
	bad.Parts = []uint16{2, 0}
	cases["unsorted parts"] = bad.Encode()
	// Op assigned outside the participant set.
	bad2 := base
	bad2.Ops = []KeyOp{{Part: 9, Key: "a"}}
	cases["unlisted part"] = bad2.Encode()
	for name, enc := range cases {
		if _, err := Decode(enc); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	rs := []Result{
		{Outcome: OutcomeApplied},
		{Outcome: OutcomeApplied, Reads: []KeyRead{
			{Key: "a", Found: true, Value: []byte("v")},
			{Key: "b", Found: false},
			{Key: "c", Found: true, Value: []byte{}},
		}},
		{Outcome: OutcomeFailed, Reads: []KeyRead{{Key: "x", Found: true, Value: []byte("actual")}}},
		{Outcome: OutcomeNotInvolved},
	}
	for _, r := range rs {
		enc := EncodeResult(r)
		got, err := DecodeResult(enc)
		if err != nil {
			t.Fatalf("outcome %d: decode: %v", r.Outcome, err)
		}
		if !bytes.Equal(enc, EncodeResult(got)) {
			t.Fatalf("outcome %d: non-canonical re-encode", r.Outcome)
		}
		if got.Outcome != r.Outcome || len(got.Reads) != len(r.Reads) {
			t.Fatalf("outcome %d: mismatch: %+v", r.Outcome, got)
		}
	}
	if _, err := DecodeResult(append(EncodeResult(rs[0]), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestBalanceCodec(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if got := DecodeBalance(EncodeBalance(v)); got != v {
			t.Errorf("balance %d round-tripped to %d", v, got)
		}
	}
	if DecodeBalance(nil) != 0 || DecodeBalance([]byte("short")) != 0 {
		t.Error("malformed balance should decode as zero")
	}
}

// fakeNet wires exchangers by direct Handle delivery: Send(addr, m)
// invokes the addressee's Handle on a separate goroutine, like the
// node's router would.
type fakeNet struct {
	mu    sync.Mutex
	peers map[transport.Addr]*Exchanger
}

func (n *fakeNet) send(from transport.Addr) func(transport.Addr, *msg.TxnVote) error {
	return func(to transport.Addr, m *msg.TxnVote) error {
		n.mu.Lock()
		peer := n.peers[to]
		n.mu.Unlock()
		if peer != nil {
			cp := *m
			go peer.Handle(transport.Envelope{From: from, Msg: &cp})
		}
		return nil
	}
}

func newPair(t *testing.T, ownVotes map[uint16]byte) (*Exchanger, *Exchanger) {
	t.Helper()
	net := &fakeNet{peers: make(map[transport.Addr]*Exchanger)}
	addrs := map[uint16]transport.Addr{0: "p0", 1: "p1"}
	resolve := func(p uint16) []transport.Addr { return []transport.Addr{addrs[p]} }
	mk := func(self uint16) *Exchanger {
		ex := NewExchanger(ExchangerConfig{
			Self:    self,
			Send:    net.send(addrs[self]),
			Resolve: resolve,
			OwnVote: func(client, seq uint64) (byte, bool) {
				v, ok := ownVotes[self]
				return v, ok
			},
			Poll: 100 * time.Microsecond,
		})
		net.mu.Lock()
		net.peers[addrs[self]] = ex
		net.mu.Unlock()
		return ex
	}
	a, b := mk(0), mk(1)
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestExchangeUnanimous(t *testing.T) {
	for _, tc := range []struct {
		name    string
		votes   map[uint16]byte
		verdict byte
	}{
		{"both ok", map[uint16]byte{0: VoteOK, 1: VoteOK}, VoteOK},
		{"one mismatch", map[uint16]byte{0: VoteOK, 1: VoteMismatch}, VoteMismatch},
		{"one wrong epoch", map[uint16]byte{0: VoteWrongEpoch, 1: VoteOK}, VoteWrongEpoch},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := newPair(t, tc.votes)
			parts := []uint16{0, 1}
			var got0, got1 byte
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); got0 = a.Exchange(5, 9, parts, tc.votes[0]) }()
			go func() { defer wg.Done(); got1 = b.Exchange(5, 9, parts, tc.votes[1]) }()
			wg.Wait()
			if got0 != tc.verdict || got1 != tc.verdict {
				t.Fatalf("verdicts %d/%d, want %d on both sides", got0, got1, tc.verdict)
			}
		})
	}
}

// TestExchangePull exercises the pull path: participant 1 executes LATE —
// long after participant 0 pushed its vote (the push is lost to eviction
// on a fresh exchanger). The Want flag on 1's own push makes 0 answer
// from its vote history, so the late side still completes.
func TestExchangePull(t *testing.T) {
	votes := map[uint16]byte{0: VoteOK, 1: VoteOK}
	a, b := newPair(t, votes)
	parts := []uint16{0, 1}
	done0 := make(chan byte, 1)
	go func() { done0 <- a.Exchange(5, 9, parts, VoteOK) }()
	time.Sleep(20 * time.Millisecond)
	if got := b.Exchange(5, 9, parts, VoteOK); got != VoteOK {
		t.Fatalf("late side verdict %d", got)
	}
	if got := <-done0; got != VoteOK {
		t.Fatalf("early side verdict %d", got)
	}
}

func TestExchangeCloseUnblocks(t *testing.T) {
	a, _ := newPair(t, map[uint16]byte{0: VoteOK})
	done := make(chan byte, 1)
	go func() { done <- a.Exchange(1, 1, []uint16{0, 1}, VoteOK) }()
	time.Sleep(5 * time.Millisecond)
	a.Close()
	select {
	case v := <-done:
		if v != VoteWrongEpoch {
			t.Fatalf("close verdict %d, want abort", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Exchange did not unblock on Close")
	}
}
