// Package ycsb implements the Yahoo! Cloud Serving Benchmark workload
// generator (Cooper et al., SoCC 2010) used in the paper's Figure 4 to
// compare MRP-Store against Cassandra and MySQL.
//
// The six core workloads are implemented with their standard mixes and
// request distributions:
//
//	A  update heavy   50% read  / 50% update           zipfian
//	B  read mostly    95% read  /  5% update           zipfian
//	C  read only     100% read                         zipfian
//	D  read latest    95% read  /  5% insert           latest
//	E  short ranges   95% scan  /  5% insert           zipfian, scan 1-100
//	F  read-mod-write 50% read  / 50% read-modify-write zipfian
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is one YCSB operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
	OpReadModifyWrite
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	case OpReadModifyWrite:
		return "READ-MODIFY-WRITE"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind    OpKind
	Key     string
	Value   []byte // for updates/inserts/RMW
	ScanLen int    // for scans
}

// Workload identifies one of the six core workloads.
type Workload byte

// The six core YCSB workloads.
const (
	WorkloadA Workload = 'A'
	WorkloadB Workload = 'B'
	WorkloadC Workload = 'C'
	WorkloadD Workload = 'D'
	WorkloadE Workload = 'E'
	WorkloadF Workload = 'F'
)

// Workloads lists all six in order.
var Workloads = []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadE, WorkloadF}

// String implements fmt.Stringer.
func (w Workload) String() string { return string(w) }

// Config parametrizes a generator.
type Config struct {
	Workload    Workload
	RecordCount int   // initial records (key space)
	ValueSize   int   // bytes per value (default 100, YCSB uses 10 fields x 100B)
	MaxScanLen  int   // default 100
	Seed        int64 // generator seed
}

// Generator produces YCSB operations. Not safe for concurrent use; create
// one per client thread.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipfian
	scanLen *rand.Rand
	// insertCount tracks keys added by OpInsert so OpRead-latest skews to
	// recent inserts.
	insertCount int
}

// New creates a generator.
func New(cfg Config) *Generator {
	if cfg.RecordCount <= 0 {
		cfg.RecordCount = 1000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	if cfg.MaxScanLen <= 0 {
		cfg.MaxScanLen = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Generator{
		cfg:     cfg,
		rng:     rng,
		zipf:    newZipfian(rng, cfg.RecordCount),
		scanLen: rand.New(rand.NewSource(cfg.Seed + 1)),
	}
}

// Key formats a record index as a YCSB-style key. Keys are zero-padded so
// lexicographic order equals numeric order, which range partitioning and
// scans rely on.
func Key(i int) string { return fmt.Sprintf("user%012d", i) }

// KeyCount returns the current size of the key space (initial records plus
// inserts generated so far).
func (g *Generator) KeyCount() int { return g.cfg.RecordCount + g.insertCount }

// value produces a deterministic pseudo-random value of the configured size.
func (g *Generator) value() []byte {
	b := make([]byte, g.cfg.ValueSize)
	g.rng.Read(b)
	return b
}

// Next produces the next operation of the workload.
func (g *Generator) Next() Op {
	switch g.cfg.Workload {
	case WorkloadA:
		if g.rng.Float64() < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey(), Value: g.value()}
	case WorkloadB:
		if g.rng.Float64() < 0.95 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpUpdate, Key: g.zipfKey(), Value: g.value()}
	case WorkloadC:
		return Op{Kind: OpRead, Key: g.zipfKey()}
	case WorkloadD:
		if g.rng.Float64() < 0.95 {
			return Op{Kind: OpRead, Key: g.latestKey()}
		}
		return g.insert()
	case WorkloadE:
		if g.rng.Float64() < 0.95 {
			n := 1 + g.scanLen.Intn(g.cfg.MaxScanLen)
			return Op{Kind: OpScan, Key: g.zipfKey(), ScanLen: n}
		}
		return g.insert()
	case WorkloadF:
		if g.rng.Float64() < 0.5 {
			return Op{Kind: OpRead, Key: g.zipfKey()}
		}
		return Op{Kind: OpReadModifyWrite, Key: g.zipfKey(), Value: g.value()}
	default:
		return Op{Kind: OpRead, Key: g.zipfKey()}
	}
}

func (g *Generator) insert() Op {
	i := g.cfg.RecordCount + g.insertCount
	g.insertCount++
	return Op{Kind: OpInsert, Key: Key(i), Value: g.value()}
}

func (g *Generator) zipfKey() string {
	return Key(g.zipf.next() % g.KeyCount())
}

// latestKey skews toward recently inserted records (workload D).
func (g *Generator) latestKey() string {
	n := g.KeyCount()
	off := g.zipf.next() % n
	return Key(n - 1 - off)
}

// zipfian draws from a zipf distribution over [0, n) with the YCSB default
// constant 0.99, using the Gray et al. quick algorithm (the same one the
// reference YCSB implementation uses).
type zipfian struct {
	rng             *rand.Rand
	n               int
	theta           float64
	alpha, zetan    float64
	eta, zeta2theta float64
	countForZeta    int
}

const zipfConstant = 0.99

func newZipfian(rng *rand.Rand, n int) *zipfian {
	z := &zipfian{rng: rng, n: n, theta: zipfConstant}
	z.zeta2theta = zetaStatic(2, z.theta)
	z.alpha = 1.0 / (1.0 - z.theta)
	z.zetan = zetaStatic(n, z.theta)
	z.countForZeta = n
	z.eta = (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

func zetaStatic(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfian) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Load returns the initial records (key, value) for preloading a store.
func Load(cfg Config) []Op {
	if cfg.RecordCount <= 0 {
		cfg.RecordCount = 1000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	out := make([]Op, cfg.RecordCount)
	for i := range out {
		v := make([]byte, cfg.ValueSize)
		rng.Read(v)
		out[i] = Op{Kind: OpInsert, Key: Key(i), Value: v}
	}
	return out
}
