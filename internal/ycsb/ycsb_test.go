package ycsb

import (
	"strings"
	"testing"
)

func opMix(t *testing.T, w Workload, n int) map[OpKind]int {
	t.Helper()
	g := New(Config{Workload: w, RecordCount: 1000, Seed: 42})
	mix := make(map[OpKind]int)
	for i := 0; i < n; i++ {
		op := g.Next()
		mix[op.Kind]++
		if op.Key == "" {
			t.Fatalf("%v: empty key", w)
		}
	}
	return mix
}

func assertFrac(t *testing.T, mix map[OpKind]int, kind OpKind, n int, want, tol float64) {
	t.Helper()
	got := float64(mix[kind]) / float64(n)
	if got < want-tol || got > want+tol {
		t.Fatalf("%v fraction = %.3f, want %.2f±%.2f (mix %v)", kind, got, want, tol, mix)
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	a := opMix(t, WorkloadA, n)
	assertFrac(t, a, OpRead, n, 0.50, 0.02)
	assertFrac(t, a, OpUpdate, n, 0.50, 0.02)

	b := opMix(t, WorkloadB, n)
	assertFrac(t, b, OpRead, n, 0.95, 0.01)
	assertFrac(t, b, OpUpdate, n, 0.05, 0.01)

	c := opMix(t, WorkloadC, n)
	assertFrac(t, c, OpRead, n, 1.00, 0.001)

	d := opMix(t, WorkloadD, n)
	assertFrac(t, d, OpRead, n, 0.95, 0.01)
	assertFrac(t, d, OpInsert, n, 0.05, 0.01)

	e := opMix(t, WorkloadE, n)
	assertFrac(t, e, OpScan, n, 0.95, 0.01)
	assertFrac(t, e, OpInsert, n, 0.05, 0.01)

	f := opMix(t, WorkloadF, n)
	assertFrac(t, f, OpRead, n, 0.50, 0.02)
	assertFrac(t, f, OpReadModifyWrite, n, 0.50, 0.02)
}

func TestZipfianSkew(t *testing.T) {
	g := New(Config{Workload: WorkloadC, RecordCount: 10000, Seed: 7})
	counts := make(map[string]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Zipfian(0.99): the hottest key should get far more than uniform share
	// (uniform would be 5 per key).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key count = %d, want heavy skew", max)
	}
	// But the tail must still be covered reasonably.
	if len(counts) < 1000 {
		t.Fatalf("distinct keys = %d, want broad coverage", len(counts))
	}
}

func TestZipfianInRange(t *testing.T) {
	g := New(Config{Workload: WorkloadC, RecordCount: 100, Seed: 3})
	for i := 0; i < 10000; i++ {
		k := g.Next().Key
		if k < Key(0) || k > Key(99) {
			t.Fatalf("key %q out of range", k)
		}
	}
}

func TestKeyFormatSorts(t *testing.T) {
	if !(Key(1) < Key(2) && Key(9) < Key(10) && Key(99) < Key(100)) {
		t.Fatal("keys must sort numerically")
	}
	if !strings.HasPrefix(Key(5), "user") {
		t.Fatalf("key = %q", Key(5))
	}
}

func TestInsertsExtendKeySpace(t *testing.T) {
	g := New(Config{Workload: WorkloadD, RecordCount: 100, Seed: 1})
	before := g.KeyCount()
	inserts := 0
	for i := 0; i < 2000; i++ {
		if g.Next().Kind == OpInsert {
			inserts++
		}
	}
	if g.KeyCount() != before+inserts {
		t.Fatalf("key count %d, want %d", g.KeyCount(), before+inserts)
	}
	if inserts == 0 {
		t.Fatal("workload D produced no inserts")
	}
}

func TestLatestSkewsToRecent(t *testing.T) {
	g := New(Config{Workload: WorkloadD, RecordCount: 10000, Seed: 9})
	recent := 0
	reads := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind != OpRead {
			continue
		}
		reads++
		if op.Key >= Key(g.KeyCount()-100) {
			recent++
		}
	}
	// The most recent 1% of keys should receive a large share of reads.
	if float64(recent)/float64(reads) < 0.3 {
		t.Fatalf("recent-100 share = %d/%d, want latest skew", recent, reads)
	}
}

func TestScanLengthsBounded(t *testing.T) {
	g := New(Config{Workload: WorkloadE, RecordCount: 1000, MaxScanLen: 50, Seed: 2})
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Kind != OpScan {
			continue
		}
		if op.ScanLen < 1 || op.ScanLen > 50 {
			t.Fatalf("scan len = %d", op.ScanLen)
		}
	}
}

func TestLoadRecords(t *testing.T) {
	recs := Load(Config{RecordCount: 50, ValueSize: 10})
	if len(recs) != 50 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.Kind != OpInsert || r.Key != Key(i) || len(r.Value) != 10 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestValuesHaveConfiguredSize(t *testing.T) {
	g := New(Config{Workload: WorkloadA, RecordCount: 100, ValueSize: 77, Seed: 4})
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind == OpUpdate && len(op.Value) != 77 {
			t.Fatalf("value size = %d", len(op.Value))
		}
	}
}

func TestDeterministicWithSameSeed(t *testing.T) {
	g1 := New(Config{Workload: WorkloadA, RecordCount: 100, Seed: 11})
	g2 := New(Config{Workload: WorkloadA, RecordCount: 100, Seed: 11})
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || a.Key != b.Key {
			t.Fatalf("generators diverged at %d", i)
		}
	}
}

func TestOpKindStrings(t *testing.T) {
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpScan, OpReadModifyWrite} {
		if k.String() == "" || strings.HasPrefix(k.String(), "OpKind(") {
			t.Fatalf("missing name for %d", k)
		}
	}
}
