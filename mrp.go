// Package mrp is the public API of this Multi-Ring Paxos library — a
// reproduction of "Building global and scalable systems with Atomic
// Multicast" (Benz, Marandi, Pedone, Garbinato — MIDDLEWARE 2014).
//
// The library provides, bottom-up:
//
//   - Atomic multicast (Multi-Ring Paxos): multicast groups map to Ring
//     Paxos rings; learners subscribe to any set of groups and deliver the
//     deterministic merge of their decision streams. See NewNode,
//     (*Node).Join, (*Node).Multicast, NewLearner.
//   - State-machine replication on top of atomic multicast: replicas,
//     retrying clients, checkpointing, coordinated log trimming, and
//     crash recovery. See NewReplica, NewClient, Recover.
//   - Two services built on SMR: MRP-Store (a partitioned, strongly
//     consistent key-value store — DeployStore) and dLog (a distributed
//     shared log — DeployLog).
//   - Two interchangeable transports: a simulated network with per-link
//     latency/bandwidth models (NewSimNetwork) and real TCP (ListenTCP).
//
// Quick start (see examples/quickstart for a runnable version):
//
//	net := mrp.NewSimNetwork()
//	node := mrp.NewNode(1, net.Endpoint("n1"))
//	node.Join(mrp.RingConfig{Ring: 1, Peers: peers, Coordinator: 1, Log: mrp.NewMemLog()})
//	node.Start()
//	node.Multicast(1, []byte("hello, group 1"))
package mrp

import (
	"mrp/internal/msg"
	"mrp/internal/multiring"
	"mrp/internal/netsim"
	"mrp/internal/recovery"
	"mrp/internal/registry"
	"mrp/internal/ringpaxos"
	"mrp/internal/smr"
	"mrp/internal/storage"
	"mrp/internal/tcpnet"
	"mrp/internal/transport"
)

// Identifiers and protocol types.
type (
	// GroupID identifies a multicast group (one Ring Paxos ring per group).
	GroupID = msg.RingID
	// NodeID identifies a process.
	NodeID = msg.NodeID
	// Instance is a consensus instance number within a ring.
	Instance = msg.Instance
	// RingInstance is one entry of a checkpoint tuple.
	RingInstance = msg.RingInstance
)

// Transport layer.
type (
	// Addr is a transport address.
	Addr = transport.Addr
	// Endpoint is a node's attachment to a network (simulated or TCP).
	Endpoint = transport.Endpoint
	// Envelope is a received message with its sender.
	Envelope = transport.Envelope
	// SimNetwork is the in-process simulated network.
	SimNetwork = netsim.Network
	// SimOption configures a SimNetwork.
	SimOption = netsim.Option
	// BatchPolicy configures transport-level write coalescing: both
	// transports pack a sender's queue backlog into one packet unless
	// Disabled is set.
	BatchPolicy = transport.BatchPolicy
	// TCPOption configures a TCP endpoint created with ListenTCP.
	TCPOption = tcpnet.Option
)

// Simulated-network constructors and options.
var (
	// NewSimNetwork creates a simulated network (LAN defaults).
	NewSimNetwork = netsim.New
	// WithLatency sets a per-link one-way latency function.
	WithLatency = netsim.WithLatency
	// WithUniformLatency sets a constant one-way latency.
	WithUniformLatency = netsim.WithUniformLatency
	// WithBandwidth sets per-link bandwidth in bytes/s.
	WithBandwidth = netsim.WithBandwidth
	// WANLatency builds the four-region EC2 latency matrix of the paper.
	WANLatency = netsim.WANLatency
	// WithSimBatch sets the simulated network's write-coalescing policy.
	WithSimBatch = netsim.WithBatch
	// ListenTCP creates a real TCP endpoint ("host:port", ":0" for any).
	ListenTCP = tcpnet.Listen
	// WithTCPBatch sets a TCP endpoint's write-coalescing policy.
	WithTCPBatch = tcpnet.WithBatch
)

// Atomic multicast (Multi-Ring Paxos).
type (
	// Node is a Multi-Ring Paxos process: one endpoint, many rings.
	Node = multiring.Node
	// Learner delivers the deterministic merge of subscribed rings.
	// Subscriptions are dynamic: Learner.Subscribe/Unsubscribe splice
	// rings in and out of the merge at an agreed Activation point.
	Learner = multiring.Learner
	// Activation names the logical point at which a dynamic subscription
	// change takes effect (see multiring.Activation for the determinism
	// contract).
	Activation = multiring.Activation
	// Delivery is one delivered message (or skip marker).
	Delivery = multiring.Delivery
	// Manager wires a node to the coordination service for election and
	// failure detection.
	Manager = multiring.Manager
	// RingConfig parametrizes ring membership (ringpaxos.Config).
	RingConfig = ringpaxos.Config
	// Peer describes one ring member.
	Peer = ringpaxos.Peer
	// Role is the Paxos role bitmask of a ring member.
	Role = ringpaxos.Role
	// RingProcess is one ring member process.
	RingProcess = ringpaxos.Process
)

// Role bits.
const (
	RoleProposer = ringpaxos.RoleProposer
	RoleAcceptor = ringpaxos.RoleAcceptor
	RoleLearner  = ringpaxos.RoleLearner
)

// Multicast constructors.
var (
	// NewNode creates a Multi-Ring Paxos node over an endpoint.
	NewNode = multiring.NewNode
	// NewLearner creates a deterministic-merge learner (M, rings...).
	NewLearner = multiring.NewLearner
	// NewManager creates a registry-driven ring manager.
	NewManager = multiring.NewManager
)

// Stable storage.
type (
	// StorageMode selects the acceptor persistence mode (five modes of
	// Figure 3).
	StorageMode = storage.Mode
	// AcceptorLog is an acceptor's stable storage for one ring.
	AcceptorLog = storage.Log
	// DiskModel describes a storage device's service times.
	DiskModel = storage.DiskModel
	// Checkpoint is a replica checkpoint (tuple + state).
	Checkpoint = storage.Checkpoint
)

// Storage modes.
const (
	InMemory = storage.InMemory
	AsyncHDD = storage.AsyncHDD
	AsyncSSD = storage.AsyncSSD
	SyncHDD  = storage.SyncHDD
	SyncSSD  = storage.SyncSSD
)

// FileWAL is a real file-backed acceptor log for TCP deployments.
type FileWAL = storage.FileWAL

// Storage constructors.
var (
	// NewLog creates an acceptor log in the given mode.
	NewLog = storage.NewLog
	// OpenFileWAL opens a file-backed acceptor log (real durability).
	OpenFileWAL = storage.OpenFileWAL
)

// Registry (coordination service) re-exports.
type (
	// Registry is the in-process coordination service (Zookeeper
	// substitute).
	Registry = registry.Registry
	// RegistrySession groups ephemeral nodes that expire together.
	RegistrySession = registry.Session
)

// NewRegistry creates an empty coordination service.
var NewRegistry = registry.New

// NewMemLog creates an in-memory acceptor log (the common default for
// examples and tests).
func NewMemLog() *AcceptorLog { return storage.NewLog(storage.InMemory) }

// State-machine replication.
type (
	// StateMachine is the replicated application interface.
	StateMachine = smr.StateMachine
	// Replica executes delivered commands and serves recovery.
	Replica = smr.Replica
	// ReplicaConfig parametrizes a replica.
	ReplicaConfig = smr.ReplicaConfig
	// Client submits commands and collects replica responses.
	Client = smr.Client
	// ClientConfig parametrizes a client.
	ClientConfig = smr.ClientConfig
)

// SMR constructors.
var (
	// NewReplica creates an SMR replica.
	NewReplica = smr.NewReplica
	// NewClient creates an SMR client.
	NewClient = smr.NewClient
)

// Recovery (Section 5 of the paper).
type (
	// TrimCoordinator runs the coordinated log-trimming protocol.
	TrimCoordinator = recovery.TrimCoordinator
	// TrimConfig parametrizes a trim coordinator.
	TrimConfig = recovery.TrimConfig
	// RecoverConfig parametrizes replica recovery.
	RecoverConfig = recovery.RecoverConfig
)

// Recovery helpers.
var (
	// NewTrimCoordinator creates a trim coordinator for one ring.
	NewTrimCoordinator = recovery.NewTrimCoordinator
	// Recover runs the recovering-replica protocol (quorum Q_R).
	Recover = recovery.Recover
	// StartInstances converts a checkpoint tuple to per-ring delivery
	// start points.
	StartInstances = recovery.StartInstances
)
