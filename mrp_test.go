package mrp_test

import (
	"fmt"
	"testing"
	"time"

	"mrp"
)

// TestPublicAPIAtomicMulticast exercises the facade exactly as the README
// quick start does: three nodes, two groups, a merged learner.
func TestPublicAPIAtomicMulticast(t *testing.T) {
	net := mrp.NewSimNetwork(mrp.WithUniformLatency(20 * time.Microsecond))
	defer net.Close()

	peersFor := func() []mrp.Peer {
		peers := make([]mrp.Peer, 3)
		for i := range peers {
			peers[i] = mrp.Peer{
				ID:    mrp.NodeID(i + 1),
				Addr:  mrp.Addr(fmt.Sprintf("api-n%d", i)),
				Roles: mrp.RoleProposer | mrp.RoleAcceptor | mrp.RoleLearner,
			}
		}
		return peers
	}
	var nodes []*mrp.Node
	for i := 0; i < 3; i++ {
		node := mrp.NewNode(mrp.NodeID(i+1), net.Endpoint(mrp.Addr(fmt.Sprintf("api-n%d", i))))
		for _, g := range []mrp.GroupID{1, 2} {
			if _, err := node.Join(mrp.RingConfig{
				Ring:         g,
				Peers:        peersFor(),
				Coordinator:  1,
				Log:          mrp.NewMemLog(),
				SkipInterval: 5 * time.Millisecond,
				SkipRate:     1000,
				RetryTimeout: 50 * time.Millisecond,
			}); err != nil {
				t.Fatal(err)
			}
		}
		node.Start()
		defer node.Stop()
		nodes = append(nodes, node)
	}

	p1, _ := nodes[2].Process(1)
	p2, _ := nodes[2].Process(2)
	learner := mrp.NewLearner(1, p1, p2)
	learner.Start()
	defer learner.Stop()

	if err := nodes[0].Multicast(1, []byte("to-group-1")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Multicast(2, []byte("to-group-2")); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(got) < 2 {
		select {
		case d := <-learner.Deliveries():
			if !d.Skip {
				got[string(d.Entry.Data)] = true
			}
		case <-deadline:
			t.Fatalf("delivered %v", got)
		}
	}
}

// TestPublicAPIStore exercises the service facade.
func TestPublicAPIStore(t *testing.T) {
	net := mrp.NewSimNetwork()
	defer net.Close()
	st, err := mrp.DeployStore(mrp.StoreConfig{
		Net:          net,
		Partitions:   2,
		Replicas:     3,
		StorageMode:  mrp.InMemory,
		RetryTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	cl := st.NewClient()
	defer cl.Close()
	if err := cl.Insert("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Read("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("read = %q, %v", v, err)
	}
	if _, err := cl.Read("missing"); err != mrp.ErrNotFound {
		t.Fatalf("err = %v", err)
	}
}

// TestPublicAPILog exercises the dLog facade.
func TestPublicAPILog(t *testing.T) {
	net := mrp.NewSimNetwork()
	defer net.Close()
	lg, err := mrp.DeployLog(mrp.LogConfig{
		Net:          net,
		Logs:         2,
		Servers:      3,
		StorageMode:  mrp.InMemory,
		DiskModel:    mrp.DiskModel{},
		SkipInterval: 5 * time.Millisecond,
		SkipRate:     1000,
		RetryTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Stop()
	cl := lg.NewClient()
	defer cl.Close()
	pos, err := cl.Append(0, []byte("entry"))
	if err != nil || pos != 0 {
		t.Fatalf("append = %d, %v", pos, err)
	}
	v, err := cl.Read(0, 0)
	if err != nil || string(v) != "entry" {
		t.Fatalf("read = %q, %v", v, err)
	}
	positions, err := cl.MultiAppend([]mrp.LogID{0, 1}, []byte("both"))
	if err != nil || len(positions) != 2 {
		t.Fatalf("multi-append = %v, %v", positions, err)
	}
}

// TestPublicAPITCP proves the facade's TCP transport interoperates with
// the protocol stack.
func TestPublicAPITCP(t *testing.T) {
	a, err := mrp.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := mrp.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Addr() == b.Addr() {
		t.Fatal("distinct endpoints share an address")
	}
}
