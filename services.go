package mrp

import (
	"mrp/internal/dlog"
	"mrp/internal/store"
)

// MRP-Store, the partitioned strongly consistent key-value service
// (Section 6.1, Table 1).
type (
	// Store is a running MRP-Store deployment.
	Store = store.Deployment
	// StoreConfig parametrizes a deployment.
	StoreConfig = store.DeployConfig
	// StoreClient issues read/scan/update/insert/delete requests.
	StoreClient = store.Client
	// StoreEntry is a key-value pair.
	StoreEntry = store.Entry
	// Partitioner maps keys to partitions.
	Partitioner = store.Partitioner
)

// StoreSchema is the published partitioning schema (stored in the
// coordination service, as the paper stores it in Zookeeper).
type StoreSchema = store.Schema

// Store constructors and helpers.
var (
	// DeployStore builds and starts an MRP-Store cluster.
	DeployStore = store.Deploy
	// NewHashPartitioner hash-partitions the key space.
	NewHashPartitioner = store.NewHashPartitioner
	// NewRangePartitioner range-partitions the key space by boundaries.
	NewRangePartitioner = store.NewRangePartitioner
	// LoadStoreSchema reads the published schema from the registry.
	LoadStoreSchema = store.LoadSchema
	// ErrNotFound reports operations on missing keys.
	ErrNotFound = store.ErrNotFound
)

// dLog, the distributed shared log service (Section 6.2, Table 2).
type (
	// Log is a running dLog deployment.
	Log = dlog.Deployment
	// LogConfig parametrizes a deployment.
	LogConfig = dlog.DeployConfig
	// LogClient issues append/multi-append/read/trim requests.
	LogClient = dlog.Client
	// LogID identifies one shared log.
	LogID = dlog.LogID
)

// dLog constructors and errors.
var (
	// DeployLog builds and starts a dLog cluster.
	DeployLog = dlog.Deploy
	// ErrTrimmed reports reads below a log's trim position.
	ErrTrimmed = dlog.ErrTrimmed
	// ErrOutOfRange reports reads past a log's tail.
	ErrOutOfRange = dlog.ErrOutOfRange
)
