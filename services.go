package mrp

import (
	"mrp/internal/autoshard"
	"mrp/internal/dlog"
	"mrp/internal/rebalance"
	"mrp/internal/store"
	"mrp/internal/txn"
)

// MRP-Store, the partitioned strongly consistent key-value service
// (Section 6.1, Table 1).
type (
	// Store is a running MRP-Store deployment.
	Store = store.Deployment
	// StoreConfig parametrizes a deployment.
	StoreConfig = store.DeployConfig
	// StoreClient issues read/scan/update/insert/delete requests.
	StoreClient = store.Client
	// StoreEntry is a key-value pair.
	StoreEntry = store.Entry
	// Partitioner maps keys to partitions.
	Partitioner = store.Partitioner
)

// StoreSchema is the published partitioning schema (stored in the
// coordination service, as the paper stores it in Zookeeper). Schemas are
// versioned by an epoch; see the versioned-schema protocol in
// internal/store/schema.go.
type StoreSchema = store.Schema

// WrongEpochError reports a command redirected past its deadline because
// the client's schema epoch lagged the replicas'.
type WrongEpochError = store.WrongEpochError

// Store constructors and helpers.
var (
	// DeployStore builds and starts an MRP-Store cluster.
	DeployStore = store.Deploy
	// NewHashPartitioner hash-partitions the key space.
	NewHashPartitioner = store.NewHashPartitioner
	// NewRangePartitioner range-partitions the key space by boundaries.
	NewRangePartitioner = store.NewRangePartitioner
	// LoadStoreSchema reads the published schema from the registry.
	LoadStoreSchema = store.LoadSchema
	// LoadStoreSchemaAt also returns the registry version (the CAS token
	// for the next publish).
	LoadStoreSchemaAt = store.LoadSchemaAt
	// WatchStoreSchema returns a coalescing channel firing on schema
	// republications.
	WatchStoreSchema = store.WatchSchema
	// ErrNotFound reports operations on missing keys.
	ErrNotFound = store.ErrNotFound
)

// Cross-partition transactions (StoreClient.MultiGet / MultiPut /
// Transfer / CompareAndSwapAcross): multi-key operations ordered by one
// atomic multicast — no locks, no 2PC.
type (
	// StoreCASOp is one key's conditional update in CompareAndSwapAcross.
	StoreCASOp = store.CASOp
)

var (
	// EncodeBalance renders an int64 account balance as a stored value
	// (the format StoreClient.Transfer operates on).
	EncodeBalance = txn.EncodeBalance
	// DecodeBalance reads a stored balance back; absent or malformed
	// values count as zero.
	DecodeBalance = txn.DecodeBalance
	// ErrNoSharedRing reports a conditional transaction whose
	// participants share no ring.
	ErrNoSharedRing = store.ErrNoSharedRing
)

// Elastic rebalancing: online repartitioning of a running MRP-Store
// deployment (split a partition onto a freshly subscribed ring with zero
// downtime; see internal/rebalance for the protocol).
type (
	// Rebalancer coordinates online splits.
	Rebalancer = rebalance.Coordinator
	// RebalanceConfig parametrizes a rebalancer.
	RebalanceConfig = rebalance.Config
)

// NewRebalancer creates a rebalance coordinator for a deployment.
var NewRebalancer = rebalance.New

// Auto-sharding: a load-driven controller that watches per-partition load
// and size through the store's stats surface and drives the rebalancer on
// its own — split/merge thresholds with hysteresis, median-key split
// selection, a migration budget, and a leader lease through the registry
// (see internal/autoshard).
type (
	// AutoSharder is the auto-sharding control loop.
	AutoSharder = autoshard.Controller
	// AutoShardConfig parametrizes a controller.
	AutoShardConfig = autoshard.Config
	// StorePartitionStats is one partition's load/size accounting, read
	// from Store.PartitionStats or StoreClient.Stats.
	StorePartitionStats = store.PartitionStats
)

// NewAutoSharder creates an auto-sharding controller (call Start on it).
var NewAutoSharder = autoshard.New

// dLog, the distributed shared log service (Section 6.2, Table 2).
type (
	// Log is a running dLog deployment.
	Log = dlog.Deployment
	// LogConfig parametrizes a deployment.
	LogConfig = dlog.DeployConfig
	// LogClient issues append/multi-append/read/trim requests.
	LogClient = dlog.Client
	// LogID identifies one shared log.
	LogID = dlog.LogID
)

// dLog constructors and errors.
var (
	// DeployLog builds and starts a dLog cluster.
	DeployLog = dlog.Deploy
	// ErrTrimmed reports reads below a log's trim position.
	ErrTrimmed = dlog.ErrTrimmed
	// ErrOutOfRange reports reads past a log's tail.
	ErrOutOfRange = dlog.ErrOutOfRange
)
